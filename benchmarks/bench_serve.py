"""Serving-path benchmark: paged + prefix-shared engine vs the per-request path.

Measures end-to-end functional serving throughput (all prompt tokens really
prefilled, all decode tokens really decoded) in two traffic regimes and
writes ``BENCH_serve.json``:

* ``shared_prefix`` — groups of requests sharing a long system-prompt-style
  prefix (plus a multi-turn chat trace), where the radix prefix cache lets
  the engine fork already-computed KV pages and prefill only each request's
  novel suffix;
* ``disjoint`` — fully independent random prompts, where prefix sharing can
  never trigger; this regime guards against the paged pool regressing the
  plain path.

Each regime compares three engine configurations:

* ``baseline`` — the per-request-cache path (``full`` cache, no sharing,
  whole-prompt prefill at admission);
* ``paged_shared`` — the paged KV pool + radix prefix cache;
* ``paged_shared_chunked`` — the same plus the chunked-prefill token
  scheduler (whose win is step-latency/TTFT shape, not raw throughput).

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py            # full run
    PYTHONPATH=src python benchmarks/bench_serve.py --quick    # CI smoke

The committed ``benchmarks/BENCH_serve_baseline.json`` pins the *ratio*
metrics (speedups, which are machine-portable); CI runs
``check_bench_regression.py`` against it and fails on a >20% drop.
"""

from __future__ import annotations

from _common import bench_main

from repro.llm.config import tiny_config
from repro.llm.model import DecoderLM
from repro.serve import ServingEngine, poisson_requests
from repro.workloads import multi_turn_requests, shared_prefix_requests


def _bench_model(max_seq_len: int) -> DecoderLM:
    config = tiny_config("bench-serve", n_layers=4, d_model=64, n_heads=4, d_ff=128,
                         vocab_size=128, max_seq_len=max_seq_len)
    return DecoderLM(config, seed=0)


def _run(engine: ServingEngine, lm: DecoderLM, requests, repeats: int, **kwargs):
    """Best-of-``repeats`` run: the report with the highest decode tok/s."""
    best = None
    for _ in range(repeats):
        report = engine.run_functional(lm, requests, **kwargs)
        if best is None or report.decode_tokens_per_s > best.decode_tokens_per_s:
            best = report
    assert best.n_requests == len(requests)
    assert best.total_decode_tokens == sum(r.decode_len for r in requests)
    return best


def _metrics(report) -> dict:
    return {
        "decode_tokens_per_s": report.decode_tokens_per_s,
        "wall_s": report.wall_s,
        "n_steps": report.n_steps,
        "reused_prefix_tokens": report.reused_prefix_tokens,
        "total_prompt_tokens": report.total_prompt_tokens,
        "mean_ttft_s": report.mean_ttft_s,
        "p99_step_latency_s": report.step_latency_percentile_s(99),
    }


def _compare(engine: ServingEngine, lm: DecoderLM, requests, repeats: int,
             page_tokens: int, token_budget: int) -> dict:
    variants = {
        "baseline": dict(cache="full"),
        "paged_shared": dict(cache=f"paged:page_tokens={page_tokens}",
                             prefix_cache=True),
        "paged_shared_chunked": dict(cache=f"paged:page_tokens={page_tokens}",
                                     prefix_cache=True, token_budget=token_budget),
    }
    reports = {name: _run(engine, lm, requests, repeats, **kwargs)
               for name, kwargs in variants.items()}
    # The engine is deterministic for fixed requests/seed, so the timed
    # reports double as the output-identity evidence.
    baseline_tokens = [r.generated_tokens for r in reports["baseline"].results]
    for name in ("paged_shared", "paged_shared_chunked"):
        assert [r.generated_tokens for r in reports[name].results] == \
            baseline_tokens, f"{name} diverged from the baseline tokens"
    results = {name: _metrics(report) for name, report in reports.items()}
    base = results["baseline"]["decode_tokens_per_s"]
    results["speedup_paged_shared_vs_baseline"] = (
        results["paged_shared"]["decode_tokens_per_s"] / base)
    results["speedup_paged_shared_chunked_vs_baseline"] = (
        results["paged_shared_chunked"]["decode_tokens_per_s"] / base)
    return results


def run_benchmark(quick: bool, repeats: int, seed: int = 0) -> dict:
    if quick:
        prefix_len, suffix_len, decode_len = 96, 8, 12
        n_groups, per_group = 2, 6
        disjoint_n, disjoint_prompt, disjoint_decode = 8, 48, 12
        turns, conversations = 3, 2
        page_tokens, token_budget, concurrency = 16, 32, 4
    else:
        prefix_len, suffix_len, decode_len = 384, 24, 32
        n_groups, per_group = 2, 12
        disjoint_n, disjoint_prompt, disjoint_decode = 16, 256, 32
        turns, conversations = 4, 3
        page_tokens, token_budget, concurrency = 32, 64, 8

    lm = _bench_model(max_seq_len=4 * (prefix_len + suffix_len + decode_len + 64))
    engine = ServingEngine(max_concurrency=concurrency)
    vocab = lm.config.vocab_size

    shared = shared_prefix_requests(
        n_groups=n_groups, requests_per_group=per_group, prefix_len=prefix_len,
        suffix_len=suffix_len, decode_len=decode_len, vocab_size=vocab, seed=seed)
    multi_turn = multi_turn_requests(
        n_conversations=conversations, n_turns=turns, system_len=prefix_len // 2,
        user_len=suffix_len, decode_len=decode_len, vocab_size=vocab, seed=seed)
    disjoint = poisson_requests(disjoint_n, rate_rps=100.0, prompt_len=disjoint_prompt,
                                decode_len=disjoint_decode, length_jitter=0.3, seed=seed)

    results = {
        "config": {
            "model": lm.config.name, "n_layers": lm.config.n_layers,
            "d_model": lm.config.d_model, "max_concurrency": concurrency,
            "seed": seed,
            "page_tokens": page_tokens, "token_budget": token_budget,
            "repeats": repeats, "quick": quick,
            "shared": {"n_groups": n_groups, "requests_per_group": per_group,
                       "prefix_len": prefix_len, "suffix_len": suffix_len,
                       "decode_len": decode_len},
            "disjoint": {"n_requests": disjoint_n, "prompt_len": disjoint_prompt,
                         "decode_len": disjoint_decode},
        },
        "shared_prefix": _compare(engine, lm, shared, repeats, page_tokens, token_budget),
        "multi_turn": _compare(engine, lm, multi_turn, repeats, page_tokens, token_budget),
        "disjoint": _compare(engine, lm, disjoint, repeats, page_tokens, token_budget),
    }

    for regime in ("shared_prefix", "multi_turn", "disjoint"):
        entry = results[regime]
        print(f"{regime:14s}: baseline {entry['baseline']['decode_tokens_per_s']:8.1f} tok/s | "
              f"paged+shared {entry['paged_shared']['decode_tokens_per_s']:8.1f} tok/s "
              f"({entry['speedup_paged_shared_vs_baseline']:.2f}x) | "
              f"+chunked {entry['paged_shared_chunked']['decode_tokens_per_s']:8.1f} tok/s "
              f"({entry['speedup_paged_shared_chunked_vs_baseline']:.2f}x) | "
              f"reuse {entry['paged_shared']['reused_prefix_tokens']}"
              f"/{entry['paged_shared']['total_prompt_tokens']} prompt tokens")
    return results


def main() -> None:
    bench_main(run_benchmark, "BENCH_serve.json", __doc__)


if __name__ == "__main__":
    main()
