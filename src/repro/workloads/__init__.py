"""Workload substrate: synthetic corpora, dataset regimes and hardware traces.

The paper evaluates on WikiText-2, PG19, PIQA, Lambada, ARC, TriviaQA,
Qasper, CNN/DailyMail, TruthfulQA and BBQ.  Offline reproduction replaces
them with synthetic equivalents that preserve what those experiments actually
exercise:

* the *sequence-length regime* (context length / decode length),
* the *evaluation mode* (perplexity, multiple choice, generation quality),
* the *token statistics* (a learnable structured language with long-range
  key-value dependencies so that attention-based eviction has real signal).
"""

from repro.workloads.synthetic import SyntheticLanguage, markov_corpus, zipf_corpus
from repro.workloads.datasets import (
    DatasetSpec,
    PAPER_DATASETS,
    get_dataset,
    scaled_dataset,
)
from repro.workloads.tasks import MultipleChoiceItem, make_multiple_choice_task, make_recall_task
from repro.workloads.generator import WorkloadTrace, PAPER_TRACES, trace_for_dataset
from repro.workloads.serving import (
    bursty_requests,
    decode_heavy_requests,
    multi_tenant_requests,
    multi_turn_requests,
    repetitive_requests,
    shared_prefix_requests,
    tiered_requests,
    zipf_shared_prefix_requests,
)

__all__ = [
    "SyntheticLanguage",
    "zipf_corpus",
    "markov_corpus",
    "DatasetSpec",
    "PAPER_DATASETS",
    "get_dataset",
    "scaled_dataset",
    "MultipleChoiceItem",
    "make_multiple_choice_task",
    "make_recall_task",
    "WorkloadTrace",
    "PAPER_TRACES",
    "trace_for_dataset",
    "bursty_requests",
    "decode_heavy_requests",
    "multi_tenant_requests",
    "multi_turn_requests",
    "repetitive_requests",
    "shared_prefix_requests",
    "tiered_requests",
    "zipf_shared_prefix_requests",
]
