"""Shared evaluation harness: trained tiny models and dataset evaluation.

The functional accuracy experiments all need a *trained* tiny model over the
synthetic language.  Training takes a few seconds per model, so trained
parameters are cached both in memory (per process) and on disk (across pytest
invocations, under ``$REPRO_CACHE_DIR`` or ``~/.cache/kelle-repro``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path

import numpy as np

from repro.llm.cache import KVCacheFactory
from repro.llm.config import TINY_CONFIGS, ModelConfig, get_config
from repro.llm.model import DecoderLM
from repro.llm.training import TrainingConfig, train_lm
from repro.registry import resolve
from repro.workloads.datasets import DatasetSpec
from repro.workloads.synthetic import SyntheticLanguage
from repro.workloads.tasks import make_multiple_choice_task, make_summarization_items
from repro.eval.accuracy import multiple_choice_accuracy, summarization_overlap
from repro.eval.perplexity import perplexity_over_documents

#: Disk-cache schema version.  Bump when the trained-parameter archive layout
#: or the training recipe changes so stale caches are never reloaded.
_CACHE_VERSION = 2


def _cache_dir() -> Path:
    root = os.environ.get("REPRO_CACHE_DIR", os.path.join(os.path.expanduser("~"), ".cache", "kelle-repro"))
    path = Path(root)
    path.mkdir(parents=True, exist_ok=True)
    return path


@dataclass
class EvalModel:
    """A trained tiny model bundled with the language it was trained on."""

    name: str
    config: ModelConfig
    model: DecoderLM
    language: SyntheticLanguage
    final_train_loss: float

    def sample_documents(self, n_docs: int, length: int, seed: int = 0) -> list[np.ndarray]:
        """Sample evaluation documents from the training language (held-out seeds)."""
        return [
            self.language.sample_document(length, seed=100_000 + seed * 1000 + i)[0]
            for i in range(n_docs)
        ]


def default_language(config: ModelConfig, seed: int = 0) -> SyntheticLanguage:
    """The synthetic language sized to a tiny model's vocabulary."""
    # Reserve the model's vocabulary: specials + keys + values + content.
    n_keys = 8
    n_values = 8
    n_content = max(8, config.vocab_size - 5 - n_keys - n_values)
    return SyntheticLanguage(n_keys=n_keys, n_values=n_values, n_content=n_content, seed=seed)


@lru_cache(maxsize=16)
def get_eval_model(name: str = "tiny-llama2-7b", seed: int = 0, steps: int = 350,
                   corpus_length: int = 40_000) -> EvalModel:
    """Return a trained tiny model (memoised in memory and on disk).

    ``name`` must be one of the tiny configurations in
    :data:`repro.llm.config.TINY_CONFIGS`.
    """
    if name not in TINY_CONFIGS:
        raise KeyError(f"'{name}' is not a tiny config; known: {sorted(TINY_CONFIGS)}")
    config = get_config(name)
    language = default_language(config, seed=seed)
    if language.vocab_size > config.vocab_size:
        raise ValueError("language vocabulary exceeds the model vocabulary")
    cache_file = _cache_dir() / f"{name}-seed{seed}-steps{steps}-v{_CACHE_VERSION}.npz"
    if cache_file.exists():
        archive = np.load(cache_file)
        params = {key: archive[key] for key in archive.files if key != "__final_loss__"}
        final_loss = float(archive["__final_loss__"])
        model = DecoderLM(config, params=params)
        return EvalModel(name, config, model, language, final_loss)
    corpus = language.training_corpus(corpus_length, seed=seed)
    training = TrainingConfig(steps=steps, batch_size=12, seq_len=96, learning_rate=3e-3, seed=seed)
    model, report = train_lm(config, corpus, training)
    payload = dict(model.params)
    payload["__final_loss__"] = np.array(report.final_loss)
    np.savez_compressed(cache_file, **payload)
    return EvalModel(name, config, model, language, report.final_loss)


def evaluate_dataset(eval_model: EvalModel, spec: DatasetSpec,
                     cache_factory: KVCacheFactory | str | None = None, n_items: int = 8,
                     seed: int = 0, *, cache: KVCacheFactory | str | None = None,
                     batch_size: int = 8) -> float:
    """Evaluate one dataset regime under a cache policy, returning its metric.

    The cache policy may be passed as a built :data:`KVCacheFactory`, as a
    registry spec string (``cache="h2o:budget=64,sink_tokens=4"``) or as
    ``None`` for the unbounded full cache.  ``cache`` is the preferred keyword;
    the positional ``cache_factory`` form is kept for compatibility.

    ``batch_size`` sets how many sequences are scored per forward pass through
    the batched decode path.  ``1`` recovers the sequential harness; the
    batched path matches it to floating-point precision (BLAS reductions are
    reordered, so the last bits — and, for knife-edge ties, an argmax — can
    differ).

    Dispatches on the dataset ``kind``: perplexity/generation regimes return
    perplexity (lower is better), multiple-choice regimes return accuracy and
    summarisation regimes return the unigram-overlap score.
    """
    if cache is not None and cache_factory is not None:
        raise ValueError("pass either 'cache' or 'cache_factory', not both")
    chosen = cache if cache is not None else cache_factory
    cache_factory = resolve("cache", chosen) if isinstance(chosen, str) else chosen
    language = eval_model.language
    if spec.kind in ("perplexity", "generation"):
        total_len = spec.context_len + spec.decode_len
        documents = eval_model.sample_documents(max(2, n_items // 2), total_len, seed=seed)
        return perplexity_over_documents(eval_model.model, documents, cache_factory,
                                         prefill_len=spec.context_len, batch_size=batch_size)
    if spec.kind == "multiple_choice":
        items = make_multiple_choice_task(language, n_items, spec.context_len, seed=seed)
        return multiple_choice_accuracy(eval_model.model, items, cache_factory,
                                        batch_size=batch_size)
    if spec.kind == "summarization":
        items = make_summarization_items(language, max(2, n_items // 2), spec.context_len, seed=seed)
        return summarization_overlap(eval_model.model, items, cache_factory,
                                     batch_size=batch_size)
    raise ValueError(f"unsupported dataset kind '{spec.kind}'")
