"""Baseline KV-cache policies, baseline hardware systems and rival accelerators.

* :mod:`repro.baselines.eviction` -- StreamingLLM, H2O and random-eviction
  cache policies (the algorithmic baselines of Table 2).
* :mod:`repro.baselines.quant_kv` -- KIVI-style and QuaRot-style quantized
  KV caches (the quantization baselines of Tables 2 and 6).
* :mod:`repro.baselines.systems` -- the hardware baseline systems of
  Figure 13 (Original+SRAM, Original+eDRAM, AEP+SRAM, AERP+SRAM,
  Kelle+eDRAM).
* :mod:`repro.baselines.accelerators` -- analytical models of the rival edge
  LLM accelerators of Figure 14 (Jetson Orin, LLM.npu, DynaX, COMET).
"""

from repro.baselines.eviction import (
    H2OCache,
    RandomEvictionCache,
    StreamingLLMCache,
    h2o_cache_factory,
    random_cache_factory,
    streaming_llm_cache_factory,
)
from repro.baselines.quant_kv import QuantizedKVCache, kivi_cache_factory, quarot_cache_factory
from repro.baselines.systems import (
    SystemConfig,
    build_aep_sram,
    build_aerp_sram,
    build_kelle_edram,
    build_original_edram,
    build_original_sram,
    baseline_suite,
)
from repro.baselines.accelerators import (
    RIVAL_ACCELERATORS,
    RivalAcceleratorModel,
    jetson_orin,
    llm_npu,
    dynax,
    comet,
)

__all__ = [
    "StreamingLLMCache",
    "H2OCache",
    "RandomEvictionCache",
    "streaming_llm_cache_factory",
    "h2o_cache_factory",
    "random_cache_factory",
    "QuantizedKVCache",
    "kivi_cache_factory",
    "quarot_cache_factory",
    "SystemConfig",
    "build_original_sram",
    "build_original_edram",
    "build_aep_sram",
    "build_aerp_sram",
    "build_kelle_edram",
    "baseline_suite",
    "RivalAcceleratorModel",
    "RIVAL_ACCELERATORS",
    "jetson_orin",
    "llm_npu",
    "dynax",
    "comet",
]
