"""Evaluation metrics and the shared harness for the accuracy experiments."""

from repro.eval.perplexity import perplexity_full, perplexity_with_cache
from repro.eval.accuracy import (
    choice_logprob,
    multiple_choice_accuracy,
    unigram_overlap_f1,
    summarization_overlap,
)
from repro.eval.harness import EvalModel, get_eval_model, evaluate_dataset

__all__ = [
    "perplexity_full",
    "perplexity_with_cache",
    "choice_logprob",
    "multiple_choice_accuracy",
    "unigram_overlap_f1",
    "summarization_overlap",
    "EvalModel",
    "get_eval_model",
    "evaluate_dataset",
]
