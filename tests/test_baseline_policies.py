"""Tests for the baseline KV-cache policies (StreamingLLM, H2O, random, quantized)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.eviction import (
    H2OCache,
    RandomEvictionCache,
    StreamingLLMCache,
    h2o_cache_factory,
    random_cache_factory,
    streaming_llm_cache_factory,
)
from repro.baselines.quant_kv import QuantizedKVCache, kivi_cache_factory, quarot_cache_factory
from repro.llm.generation import generate


def _fill(cache, n_tokens, rng, scores=None):
    for position in range(n_tokens):
        key = rng.standard_normal((cache.n_heads, cache.head_dim)).astype(np.float32)
        value = rng.standard_normal((cache.n_heads, cache.head_dim)).astype(np.float32)
        cache.append(key, value, np.zeros(cache.d_model, dtype=np.float32), position)
        keys, values, valid = cache.fetch()
        n = keys.shape[1]
        probs = np.full((cache.n_heads, n), 1.0 / n)
        if scores is not None:
            probs = np.tile(scores(position, n), (cache.n_heads, 1))
        cache.observe_attention(probs)


class TestStreamingLLM:
    def test_keeps_sinks_and_recent_window(self, rng):
        cache = StreamingLLMCache(2, 4, 8, budget=8, sink_tokens=2, recent_window=5)
        _fill(cache, 30, rng)
        positions = sorted(cache._positions)
        assert cache.num_tokens <= 8
        assert 0 in positions and 1 in positions  # sinks
        assert positions[-1] == 29  # newest token kept

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            StreamingLLMCache(2, 4, 8, budget=2, sink_tokens=2, recent_window=2)


class TestH2O:
    def test_keeps_heavy_hitters(self, rng):
        cache = H2OCache(2, 4, 8, budget=6, sink_tokens=1, recent_window=2)

        def scores(position, n):
            # Token at position 3 always receives all the attention mass.
            row = np.full(n, 1e-4)
            if n > 3:
                row[3] = 1.0
            return row / row.sum()

        _fill(cache, 20, rng, scores=scores)
        assert 3 in cache._positions
        assert cache.num_tokens <= 6

    def test_eviction_counts(self, rng):
        cache = H2OCache(2, 4, 8, budget=5, sink_tokens=1, recent_window=2)
        _fill(cache, 12, rng)
        assert cache.eviction_count == 12 - cache.num_tokens


class TestRandomEviction:
    def test_budget_and_determinism(self, rng):
        cache_a = RandomEvictionCache(2, 4, 8, budget=6, sink_tokens=1, recent_window=2, seed=3)
        cache_b = RandomEvictionCache(2, 4, 8, budget=6, sink_tokens=1, recent_window=2, seed=3)
        _fill(cache_a, 15, np.random.default_rng(0))
        _fill(cache_b, 15, np.random.default_rng(0))
        assert cache_a._positions == cache_b._positions
        assert cache_a.num_tokens <= 6


class TestQuantizedCaches:
    def test_storage_bytes_scale_with_bits(self, rng):
        kivi = QuantizedKVCache(2, 8, 16, bits=2)
        quarot = QuantizedKVCache(2, 8, 16, bits=4, use_hadamard=True)
        for cache in (kivi, quarot):
            _fill(cache, 10, rng)
        assert kivi.stored_bytes() == quarot.stored_bytes() // 2
        assert kivi.num_tokens == 10

    def test_roundtrip_error_decreases_with_bits(self, rng):
        key = rng.standard_normal((2, 8)).astype(np.float32)
        low = QuantizedKVCache(2, 8, 16, bits=2)._roundtrip(key)
        high = QuantizedKVCache(2, 8, 16, bits=8)._roundtrip(key)
        assert np.abs(high - key).mean() < np.abs(low - key).mean()

    def test_hadamard_requires_power_of_two_head_dim(self):
        with pytest.raises(ValueError):
            QuantizedKVCache(2, 12, 24, bits=4, use_hadamard=True)

    def test_8bit_quantized_cache_nearly_matches_full_cache(self, small_model, rng):
        prompt = rng.integers(0, small_model.config.vocab_size, size=10).tolist()
        reference = generate(small_model, prompt, 6, cache_factory=None)
        quantized = generate(small_model, prompt, 6,
                             cache_factory=lambda *a, **k: QuantizedKVCache(
                                 small_model.config.n_heads, small_model.config.head_dim,
                                 small_model.config.d_model, bits=8))
        assert reference.generated_tokens == quantized.generated_tokens


class TestFactoriesWithModel:
    @pytest.mark.parametrize("factory_builder", [
        lambda: streaming_llm_cache_factory(16, sink_tokens=2),
        lambda: h2o_cache_factory(16, sink_tokens=2, recent_window=4),
        lambda: random_cache_factory(16, sink_tokens=2, recent_window=4),
        lambda: kivi_cache_factory(bits=2),
        lambda: quarot_cache_factory(bits=4),
    ])
    def test_generation_runs_under_every_policy(self, small_model, rng, factory_builder):
        prompt = rng.integers(0, small_model.config.vocab_size, size=20).tolist()
        result = generate(small_model, prompt, 12, cache_factory=factory_builder())
        assert len(result.generated_tokens) == 12
        assert all(0 <= t < small_model.config.vocab_size for t in result.generated_tokens)
        assert result.caches[0].num_tokens <= 32
