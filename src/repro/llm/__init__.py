"""From-scratch NumPy transformer-decoder substrate.

The paper's accuracy experiments run HuggingFace checkpoints; this substrate
replaces them with decoder-only transformers implemented directly on NumPy:

* :mod:`repro.llm.config` -- model configurations.  Full-size *shape* configs
  (LLaMA-2/3, Mistral, Qwen2, OPT) drive the hardware performance model;
  tiny trainable configs drive the functional accuracy experiments.
* :mod:`repro.llm.functional` -- numerical primitives (softmax, GeLU/SiLU,
  LayerNorm/RMSNorm, rotary embeddings, cross entropy).
* :mod:`repro.llm.autodiff` -- a compact reverse-mode autodiff engine used by
  the training loop.
* :mod:`repro.llm.model` -- parameter initialisation and the inference
  forward pass (full-sequence and incremental decode with a pluggable KV
  cache).
* :mod:`repro.llm.cache` -- the KV-cache interface and the full-cache
  reference implementation.
* :mod:`repro.llm.generation` -- prefill + decode driver.
* :mod:`repro.llm.speculate` -- speculative-decoding drafters (prompt-lookup
  n-gram, draft model) verified by :meth:`DecoderLM.verify_chunk`.
* :mod:`repro.llm.tokenizer` -- byte-level and word-level tokenizers.
* :mod:`repro.llm.training` -- Adam training loop for the tiny models.
"""

from repro.llm.config import (
    ModelConfig,
    FULL_SIZE_CONFIGS,
    TINY_CONFIGS,
    get_config,
    tiny_config,
)
from repro.llm.cache import ContiguousKVStore, FullKVCache, KVCacheFactory, LayerKVCache
from repro.llm.model import DecoderLM
from repro.llm.generation import (
    GenerationResult,
    forced_decode_logprobs,
    forced_decode_logprobs_batch,
    generate,
    generate_batch,
)
from repro.llm.speculate import (
    Drafter,
    DrafterSession,
    DraftModelDrafter,
    NgramDrafter,
    NoneDrafter,
)
from repro.llm.tokenizer import ByteTokenizer, WordTokenizer
from repro.llm.training import TrainingConfig, train_lm

__all__ = [
    "ModelConfig",
    "FULL_SIZE_CONFIGS",
    "TINY_CONFIGS",
    "get_config",
    "tiny_config",
    "DecoderLM",
    "LayerKVCache",
    "ContiguousKVStore",
    "FullKVCache",
    "KVCacheFactory",
    "GenerationResult",
    "Drafter",
    "DrafterSession",
    "DraftModelDrafter",
    "NgramDrafter",
    "NoneDrafter",
    "generate",
    "generate_batch",
    "forced_decode_logprobs",
    "forced_decode_logprobs_batch",
    "ByteTokenizer",
    "WordTokenizer",
    "TrainingConfig",
    "train_lm",
]
