"""Figure 15: ablations of recomputation, 2DRP and the Kelle scheduler.

(a) Kelle+eDRAM with and without KV-cache recomputation: energy breakdown and
    relative energy efficiency.
(b) Four refresh strategies on the LLaMA2-7B PG19 workload: guard-interval
    refresh ("Org"), a uniform relaxed interval ("Uni"), 2DRP ("2D") and
    2DRP combined with the Kelle scheduler ("2K").
"""

from __future__ import annotations

from dataclasses import replace

from repro.accelerator.accelerator import EdgeSystem
from repro.baselines.systems import build_kelle_edram
from repro.experiments.common import HARDWARE_BUDGETS, simulate_system
from repro.utils.tables import TableResult


def run_recomputation(model_names: tuple[str, ...] = ("llama3.2-3b", "llama2-13b"),
                      dataset: str = "pg19") -> TableResult:
    """Figure 15 (a): impact of KV-cache recomputation in Kelle+eDRAM."""
    budget = HARDWARE_BUDGETS[dataset]
    table = TableResult(
        title="Figure 15 (a): impact of KV cache recomputation",
        columns=["model", "recomputation", "energy_j", "kv_energy_frac", "rsa_energy_frac",
                 "relative_efficiency"],
    )
    for model_name in model_names:
        with_recompute = simulate_system(build_kelle_edram(kv_budget=budget), model_name, dataset)
        no_recompute_system = EdgeSystem(replace(
            build_kelle_edram(kv_budget=budget).config, recompute_fraction=0.0, kv_policy="aep",
            name="kelle+edram-norecomp"))
        without = simulate_system(no_recompute_system, model_name, dataset)
        for label, result in (("with", with_recompute), ("without", without)):
            energy = result.energy
            kv_frac = (energy.fraction("kv_onchip") + energy.fraction("refresh")
                       + energy.fraction("dram"))
            table.add_row(
                model=model_name,
                recomputation=label,
                energy_j=result.total_energy_j,
                kv_energy_frac=kv_frac,
                rsa_energy_frac=energy.fraction("rsa"),
                relative_efficiency=without.total_energy_j / result.total_energy_j,
            )
    return table


def run_refresh_strategies(model_name: str = "llama2-7b", dataset: str = "pg19") -> TableResult:
    """Figure 15 (b): Org / Uni / 2D / 2K refresh-strategy comparison."""
    budget = HARDWARE_BUDGETS[dataset]
    base = build_kelle_edram(kv_budget=budget).config
    strategies = {
        "org": replace(base, name="kelle-org", refresh="guard", use_kelle_scheduler=False),
        "uni": replace(base, name="kelle-uni", refresh="uniform", uniform_interval_s=0.36e-3,
                       use_kelle_scheduler=False),
        "2d": replace(base, name="kelle-2d", refresh="2drp", use_kelle_scheduler=False),
        "2k": replace(base, name="kelle-2k", refresh="2drp", use_kelle_scheduler=True),
    }
    table = TableResult(
        title="Figure 15 (b): refresh strategy ablation",
        columns=["strategy", "energy_j", "refresh_frac", "energy_efficiency"],
    )
    reference = simulate_system(EdgeSystem(strategies["org"]), model_name, dataset)
    for label, config in strategies.items():
        result = simulate_system(EdgeSystem(config), model_name, dataset)
        table.add_row(
            strategy=label,
            energy_j=result.total_energy_j,
            refresh_frac=result.energy.fraction("refresh"),
            energy_efficiency=reference.total_energy_j / result.total_energy_j,
        )
    return table


def run() -> dict[str, TableResult]:
    """Both Figure 15 panels."""
    return {
        "recomputation": run_recomputation(),
        "refresh": run_refresh_strategies(),
    }
