"""Speculative-decoding benchmark: drafters vs the plain decode path.

Measures end-to-end functional serving decode throughput and proposal
acceptance for the registered drafters in two traffic regimes and writes
``BENCH_spec.json``:

* ``repetitive`` — templated token streams (``repetitive_requests``), the
  high-acceptance regime where the prompt-lookup n-gram drafter predicts
  most continuations and collapses several decode steps into one batched
  verification forward;
* ``random`` — fully random poisson prompts, the guard regime: speculation
  must not regress the plain path by more than ~10%.  (The untrained bench
  model's greedy continuations loop, so even here the n-gram drafter's
  acceptance stays high; the ``reject_all`` variant below measures the
  *genuine* low-acceptance regime.)

Each regime compares four engine configurations on the paged cache:

* ``baseline`` — no drafter (the plain batched decode path);
* ``ngram`` — prompt-lookup self-speculation, ``ngram:k=4``;
* ``draft_model`` — a smaller 2-layer draft model proposing ``k=3`` tokens;
* ``reject_all`` — an adversarial drafter whose proposals are (almost)
  always rejected, charging the full verification + rollback overhead every
  step: the worst case any real drafter can approach.

Usage::

    PYTHONPATH=src python benchmarks/bench_spec.py            # full run
    PYTHONPATH=src python benchmarks/bench_spec.py --quick    # CI smoke

The committed ``benchmarks/BENCH_spec_baseline.json`` pins the *ratio*
metrics (speedups over the same-process baseline, which are machine
portable) and carries its own ``guarded`` metric list; CI runs
``check_bench_regression.py`` against it and fails on a >20% drop.
"""

from __future__ import annotations

from _common import bench_main

from repro.llm.config import tiny_config
from repro.llm.model import DecoderLM
from repro.llm.speculate import Drafter, DraftModelDrafter, DrafterSession
from repro.serve import ServingEngine, poisson_requests
from repro.workloads import repetitive_requests


class _RejectAllSession(DrafterSession):
    def __init__(self, vocab_size: int, k: int) -> None:
        self._vocab = vocab_size
        self._k = k

    def propose(self, context, max_tokens=None):
        budget = self._k if max_tokens is None else min(self._k, max_tokens)
        if budget <= 0:
            return []
        # Vocab-shifted recent context: virtually never the target's argmax.
        return [(int(t) + 1) % self._vocab for t in list(context)[-budget:]]


class RejectAllDrafter(Drafter):
    """Adversarial drafter measuring pure rejected-verification overhead."""

    def __init__(self, vocab_size: int, k: int = 4) -> None:
        self.k = k
        self._vocab = vocab_size

    def session(self) -> DrafterSession:
        return _RejectAllSession(self._vocab, self.k)

    def describe(self) -> str:
        return f"reject-all:k={self.k}"


def _bench_model(max_seq_len: int) -> DecoderLM:
    config = tiny_config("bench-spec", n_layers=4, d_model=64, n_heads=4, d_ff=128,
                         vocab_size=128, max_seq_len=max_seq_len)
    return DecoderLM(config, seed=0)


def _draft_model(target: DecoderLM) -> DecoderLM:
    """A half-depth, half-width draft model sharing the target's vocabulary."""
    config = tiny_config("bench-spec-draft", n_layers=2, d_model=32, n_heads=4,
                         d_ff=64, vocab_size=target.config.vocab_size,
                         max_seq_len=target.config.max_seq_len)
    return DecoderLM(config, seed=1)


def _run(engine: ServingEngine, lm: DecoderLM, requests, repeats: int, **kwargs):
    """Best-of-``repeats`` run: the report with the highest decode tok/s."""
    best = None
    for _ in range(repeats):
        report = engine.run_functional(lm, requests, **kwargs)
        if best is None or report.decode_tokens_per_s > best.decode_tokens_per_s:
            best = report
    assert best.n_requests == len(requests)
    assert best.total_decode_tokens == sum(r.decode_len for r in requests)
    return best


def _metrics(report) -> dict:
    return {
        "decode_tokens_per_s": report.decode_tokens_per_s,
        "wall_s": report.wall_s,
        "n_steps": report.n_steps,
        "acceptance_rate": report.spec_acceptance_rate,
        "spec_proposed_tokens": report.spec_proposed_tokens,
        "spec_accepted_tokens": report.spec_accepted_tokens,
    }


def _compare(engine: ServingEngine, lm: DecoderLM, requests, repeats: int,
             draft: DecoderLM, page_tokens: int) -> dict:
    variants = {
        "baseline": dict(),
        "ngram": dict(drafter="ngram:k=4"),
        "draft_model": dict(drafter=DraftModelDrafter(draft, k=3)),
        "reject_all": dict(drafter=RejectAllDrafter(lm.config.vocab_size, k=4)),
    }
    cache = f"paged:page_tokens={page_tokens}"
    reports = {name: _run(engine, lm, requests, repeats, cache=cache, **kwargs)
               for name, kwargs in variants.items()}
    # Speculation is token-identical by construction; the timed reports
    # double as the output-identity evidence.
    baseline_tokens = [r.generated_tokens for r in reports["baseline"].results]
    for name in ("ngram", "draft_model", "reject_all"):
        assert [r.generated_tokens for r in reports[name].results] == \
            baseline_tokens, f"{name} diverged from the baseline tokens"
    results = {name: _metrics(report) for name, report in reports.items()}
    base = results["baseline"]["decode_tokens_per_s"]
    for name in ("ngram", "draft_model", "reject_all"):
        results[f"speedup_{name}_vs_baseline"] = (
            results[name]["decode_tokens_per_s"] / base)
    return results


def run_benchmark(quick: bool, repeats: int, seed: int = 0) -> dict:
    if quick:
        n_requests, template_len, n_repeats, decode_len = 6, 16, 3, 24
        random_n, random_prompt, random_decode = 6, 48, 24
        page_tokens, concurrency = 16, 4
    else:
        n_requests, template_len, n_repeats, decode_len = 12, 32, 6, 96
        random_n, random_prompt, random_decode = 12, 192, 96
        page_tokens, concurrency = 32, 8

    max_seq_len = 4 * max(template_len * n_repeats + decode_len,
                          random_prompt + random_decode)
    lm = _bench_model(max_seq_len=max_seq_len)
    draft = _draft_model(lm)
    engine = ServingEngine(max_concurrency=concurrency)
    vocab = lm.config.vocab_size

    repetitive = repetitive_requests(
        n_requests=n_requests, template_len=template_len, n_repeats=n_repeats,
        decode_len=decode_len, vocab_size=vocab, seed=seed)
    random_reqs = poisson_requests(random_n, rate_rps=100.0, prompt_len=random_prompt,
                                   decode_len=random_decode, length_jitter=0.3, seed=seed)

    results = {
        "config": {
            "model": lm.config.name, "n_layers": lm.config.n_layers,
            "d_model": lm.config.d_model, "draft_model": draft.config.name,
            "draft_n_layers": draft.config.n_layers,
            "max_concurrency": concurrency, "page_tokens": page_tokens,
            "seed": seed,
            "repeats": repeats, "quick": quick,
            "repetitive": {"n_requests": n_requests, "template_len": template_len,
                           "n_repeats": n_repeats, "decode_len": decode_len},
            "random": {"n_requests": random_n, "prompt_len": random_prompt,
                       "decode_len": random_decode},
        },
        "repetitive": _compare(engine, lm, repetitive, repeats, draft, page_tokens),
        "random": _compare(engine, lm, random_reqs, repeats, draft, page_tokens),
    }

    for regime in ("repetitive", "random"):
        entry = results[regime]
        print(f"{regime:10s}: baseline {entry['baseline']['decode_tokens_per_s']:8.1f} tok/s | "
              f"ngram {entry['ngram']['decode_tokens_per_s']:8.1f} tok/s "
              f"({entry['speedup_ngram_vs_baseline']:.2f}x, "
              f"accept {100 * entry['ngram']['acceptance_rate']:.0f}%) | "
              f"draft-model {entry['draft_model']['decode_tokens_per_s']:8.1f} tok/s "
              f"({entry['speedup_draft_model_vs_baseline']:.2f}x, "
              f"accept {100 * entry['draft_model']['acceptance_rate']:.0f}%) | "
              f"reject-all {entry['speedup_reject_all_vs_baseline']:.2f}x "
              f"(accept {100 * entry['reject_all']['acceptance_rate']:.0f}%)")
    return results


def main() -> None:
    bench_main(run_benchmark, "BENCH_spec.json", __doc__)


if __name__ == "__main__":
    main()
