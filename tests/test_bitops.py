"""Tests for fp16 bit manipulation and retention-fault injection."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.bitops import (
    FAULT_MODE_DECAY,
    FAULT_MODE_FLIP,
    LSB_POSITIONS,
    MSB_POSITIONS,
    bits_to_float16,
    float16_to_bits,
    inject_bit_flips,
    inject_bit_flips_fp16,
)


class TestBitViews:
    def test_roundtrip(self):
        values = np.array([0.0, 1.0, -2.5, 65504.0], dtype=np.float16)
        assert np.array_equal(bits_to_float16(float16_to_bits(values)), values)

    def test_byte_partition_covers_all_bits(self):
        assert sorted(MSB_POSITIONS + LSB_POSITIONS) == list(range(16))


class TestInjectBitFlips:
    def test_zero_probability_is_identity(self, rng):
        bits = rng.integers(0, 2**16, size=100, dtype=np.uint16)
        assert np.array_equal(inject_bit_flips(bits, 0.0, rng), bits)

    def test_probability_one_flip_mode_inverts_all_selected_bits(self, rng):
        bits = np.zeros(64, dtype=np.uint16)
        flipped = inject_bit_flips(bits, 1.0, rng, positions=(0, 1), mode=FAULT_MODE_FLIP)
        assert np.all(flipped == 0b11)

    def test_decay_mode_only_clears_bits(self, rng):
        bits = rng.integers(0, 2**16, size=500, dtype=np.uint16)
        decayed = inject_bit_flips(bits, 0.5, rng, mode=FAULT_MODE_DECAY)
        # No new bits may appear: decayed AND NOT original == 0.
        assert np.all((decayed & ~bits) == 0)

    def test_decay_probability_one_clears_selected_byte(self, rng):
        bits = np.full(32, 0xFFFF, dtype=np.uint16)
        decayed = inject_bit_flips(bits, 1.0, rng, positions=MSB_POSITIONS, mode=FAULT_MODE_DECAY)
        assert np.all(decayed == 0x00FF)

    def test_invalid_arguments(self, rng):
        with pytest.raises(ValueError):
            inject_bit_flips(np.zeros(4, dtype=np.uint16), 1.5, rng)
        with pytest.raises(ValueError):
            inject_bit_flips(np.zeros(4, dtype=np.uint16), 0.5, rng, mode="bogus")

    def test_flip_rate_statistics(self, rng):
        bits = np.zeros(20000, dtype=np.uint16)
        flipped = inject_bit_flips(bits, 0.01, rng, mode=FAULT_MODE_FLIP)
        observed = np.unpackbits(flipped.view(np.uint8)).mean()
        assert observed == pytest.approx(0.01, rel=0.3)


class TestInjectFp16:
    def test_no_corruption_at_zero_rates(self, rng):
        values = rng.standard_normal(256).astype(np.float16)
        out = inject_bit_flips_fp16(values, 0.0, 0.0, rng)
        np.testing.assert_array_equal(out, values)

    def test_output_always_finite(self, rng):
        values = rng.standard_normal(4096).astype(np.float16) * 100
        out = inject_bit_flips_fp16(values, 0.2, 0.2, rng, mode=FAULT_MODE_FLIP)
        assert np.all(np.isfinite(out.astype(np.float32)))

    def test_decay_shrinks_magnitudes_on_average(self, rng):
        values = (rng.standard_normal(8192).astype(np.float16) + 2.0)
        out = inject_bit_flips_fp16(values, 0.3, 0.3, rng, mode=FAULT_MODE_DECAY)
        assert np.mean(np.abs(out.astype(np.float64))) <= np.mean(np.abs(values.astype(np.float64)))

    def test_lsb_corruption_is_gentler_than_msb(self, rng):
        values = rng.standard_normal(8192).astype(np.float16)
        msb = inject_bit_flips_fp16(values, 0.05, 0.0, rng, mode=FAULT_MODE_FLIP)
        lsb = inject_bit_flips_fp16(values, 0.0, 0.05, rng, mode=FAULT_MODE_FLIP)
        msb_error = np.mean(np.abs(msb.astype(np.float64) - values.astype(np.float64)))
        lsb_error = np.mean(np.abs(lsb.astype(np.float64) - values.astype(np.float64)))
        assert msb_error > lsb_error


class TestBitopsProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.floats(min_value=0.0, max_value=1.0), st.integers(min_value=0, max_value=2**31 - 1))
    def test_decay_never_increases_bit_count(self, probability, seed):
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2**16, size=128, dtype=np.uint16)
        decayed = inject_bit_flips(bits, probability, rng, mode=FAULT_MODE_DECAY)
        original_pop = np.unpackbits(bits.view(np.uint8)).sum()
        decayed_pop = np.unpackbits(decayed.view(np.uint8)).sum()
        assert decayed_pop <= original_pop

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_flip_is_deterministic_given_generator_state(self, seed):
        bits = np.arange(64, dtype=np.uint16)
        a = inject_bit_flips(bits, 0.1, np.random.default_rng(seed), mode=FAULT_MODE_FLIP)
        b = inject_bit_flips(bits, 0.1, np.random.default_rng(seed), mode=FAULT_MODE_FLIP)
        assert np.array_equal(a, b)
