"""Request-lifecycle scheduler with pluggable, registry-resolvable policies.

This is the *policy* layer of the serving core's three-layer split
(:class:`Scheduler` / :class:`~repro.serve.kv_manager.KVSpaceManager` /
:class:`~repro.serve.executor.ModelExecutor`).  The scheduler owns every
request's lifecycle state::

    WAITING -> PREFILL -> DECODE -> FINISHED
        ^          |         |        (or CANCELLED / TIMEOUT / FAILED
        |          v         v         from any live phase)
        +------ PREEMPTED <--+

and consults a :class:`SchedulingPolicy` — a first-class component registered
under the ``"policy"`` registry kind (``"fcfs"``, ``"priority:levels=3"``,
``"sjf"``) — to produce a per-step :class:`ScheduleDecision`: which waiting
requests to admit, how to split the chunked-prefill token budget, which
sequences decode this step, and which running victims to preempt when the
:class:`~repro.serve.kv_manager.KVSpaceManager` reports KV-space pressure.

Preemption is eviction-and-recompute: a victim's pages are released, its
generated tokens are preserved on its :class:`SequenceState`, and it re-enters
the waiting queue; on re-admission its *recompute target* (prompt plus all
generated tokens but the last) is prefilled again and decoding resumes from
the preserved last token — token-identical to an uninterrupted run for greedy
decoding over pinned prompts.
"""

from __future__ import annotations

import abc
import heapq
from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Callable

from repro.registry import register, resolve

if TYPE_CHECKING:  # pragma: no cover - typing-only imports
    from repro.llm.cache import LayerKVCache
    from repro.llm.speculate import DrafterSession
    from repro.serve.engine import Request
    from repro.serve.kv_manager import KVSpaceManager, RequestCheckpoint


class RequestPhase(Enum):
    """Lifecycle phase of one serving request."""

    WAITING = "waiting"
    PREFILL = "prefill"
    DECODE = "decode"
    PREEMPTED = "preempted"
    FINISHED = "finished"
    CANCELLED = "cancelled"
    #: Deadline exceeded (``Request.deadline_steps``) — terminal.
    TIMEOUT = "timeout"
    #: Transient-failure retries exhausted (``Request.max_retries``) — terminal.
    FAILED = "failed"


@dataclass(eq=False)
class SequenceState:
    """Mutable per-request run state (the unit the three layers exchange).

    ``prefill_target`` is the token sequence that must be in the KV cache
    before decoding: the prompt on a fresh admission, or prompt + all
    generated tokens but the last when resuming after preemption (the
    recompute path).  ``resume_next_input`` carries the preserved last
    generated token across that recompute.
    """

    request: "Request"
    prompt: list[int]
    phase: RequestPhase = RequestPhase.WAITING
    caches: "list[LayerKVCache] | None" = None
    generated: list[int] = field(default_factory=list)
    prefill_target: list[int] = field(default_factory=list)
    prefilled: int = 0
    reused: int = 0
    position: int = 0
    next_input: int | None = None
    resume_next_input: int | None = None
    ttft_s: float = 0.0
    first_token_step: int = -1
    admitted_step: int = -1
    admitted_wall: float = 0.0
    spec_session: "DrafterSession | None" = None
    proposals: list[int] = field(default_factory=list)
    n_preemptions: int = 0
    #: Logical KV tokens reserved for this sequence (KVSpaceManager-owned).
    reserved_tokens: int = 0
    #: Transient executor failures retried so far.
    n_retries: int = 0
    #: Session clock before which admission skips this state (retry backoff).
    blocked_until_step: int = 0
    #: Session clock at submission — the deadline baseline.
    submitted_clock: int = 0
    #: Pending KV checkpoint to restore from at admission (recompute-free
    #: failover).  Attached by migration/crash recovery; consumed (or, when
    #: stale/incompatible, silently dropped to the recompute path) by
    #: :meth:`Scheduler.admit`.  Self-contained, so it survives evacuation
    #: and even the crash of the replica it was queued on.
    checkpoint: "RequestCheckpoint | None" = None
    #: Brownout decode cap: when set, the request finishes (``truncated``)
    #: after this many generated tokens instead of ``request.decode_len``.
    #: Never below ``len(generated)`` — capping cannot rewind progress.
    decode_cap: int | None = None

    @property
    def request_id(self) -> str:
        return self.request.request_id

    @property
    def prefill_done(self) -> bool:
        return self.caches is not None and self.prefilled == len(self.prefill_target)

    @property
    def effective_decode_len(self) -> int:
        """Decode target honouring any brownout cap (never below progress)."""
        if self.decode_cap is None:
            return self.request.decode_len
        return min(self.request.decode_len,
                   max(self.decode_cap, len(self.generated), 1))

    @property
    def decode_remaining(self) -> int:
        return self.effective_decode_len - len(self.generated)

    @property
    def is_live(self) -> bool:
        return self.phase in (RequestPhase.WAITING, RequestPhase.PREFILL,
                              RequestPhase.DECODE, RequestPhase.PREEMPTED)

    @property
    def is_running(self) -> bool:
        return self.phase in (RequestPhase.PREFILL, RequestPhase.DECODE)

    @property
    def cached_tokens(self) -> int:
        """Tokens currently held in this sequence's KV caches."""
        return self.position if self.prefill_done else self.prefilled


@dataclass
class ScheduleDecision:
    """One step's scheduling outcome, consumed by the ModelExecutor."""

    step: int
    #: Sequences drafting/decoding this step (pre-prefill decode-ready set).
    decode_ready: list[SequenceState] = field(default_factory=list)
    #: Fresh sequences prefilling their whole target in one batched forward.
    prefill_whole: list[SequenceState] = field(default_factory=list)
    #: (sequence, chunk_len) pairs for the chunked-prefill scheduler.
    prefill_chunks: list[tuple[SequenceState, int]] = field(default_factory=list)
    #: Victims evicted this step to relieve KV-space pressure.
    preempted: list[SequenceState] = field(default_factory=list)

    @property
    def has_model_work(self) -> bool:
        return bool(self.decode_ready or self.prefill_whole or self.prefill_chunks)


class SchedulingPolicy(abc.ABC):
    """Ordering policy for admission, step priority and victim selection.

    ``rank`` maps a sequence to a sortable key: *smaller ranks run first* —
    they are admitted earlier, their KV growth is protected under memory
    pressure, and preemption victims are chosen from the *largest* ranks.
    """

    name: str = "policy"

    #: Whether a waiting request may preempt strictly worse-ranked running
    #: sequences to claim KV space at admission time (priority traffic).
    preempts_for_admission: bool = False

    @abc.abstractmethod
    def rank(self, state: SequenceState):
        """Sort key; smaller means more entitled to run."""

    def describe(self) -> str:
        return self.name

    def victim(self, candidates: list[SequenceState]) -> SequenceState | None:
        """The preemption victim among ``candidates`` (worst rank), if any."""
        if not candidates:
            return None
        return max(candidates, key=self.rank)


class FCFSPolicy(SchedulingPolicy):
    """First-come-first-served: arrival order, ties broken by request id."""

    name = "fcfs"

    def rank(self, state: SequenceState):
        return (state.request.arrival_time_s, state.request.request_id)


class PriorityPolicy(SchedulingPolicy):
    """Strict priority classes: level 0 dominates 1 dominates 2 ...

    ``levels`` buckets :attr:`Request.priority` into ``[0, levels)``; within
    a level, FCFS order applies.  Waiting high-priority requests may preempt
    strictly lower-priority running sequences to claim KV space.
    """

    name = "priority"
    preempts_for_admission = True

    def __init__(self, levels: int = 3) -> None:
        if levels <= 0:
            raise ValueError("levels must be positive")
        self.levels = levels

    def rank(self, state: SequenceState):
        level = min(max(int(state.request.priority), 0), self.levels - 1)
        return (level, state.request.arrival_time_s, state.request.request_id)

    def describe(self) -> str:
        return f"priority:levels={self.levels}"


class SJFPolicy(SchedulingPolicy):
    """Shortest predicted job first: smallest remaining work runs first.

    The prediction is the request's declared geometry — remaining decode
    tokens plus any prompt/recompute tokens still to prefill — with FCFS
    tie-breaks, so equal-length jobs keep arrival order.
    """

    name = "sjf"

    def rank(self, state: SequenceState):
        predicted = state.decode_remaining + max(
            len(state.prefill_target or state.prompt) - state.prefilled, 0)
        return (predicted, state.request.arrival_time_s, state.request.request_id)


@register("policy", "fcfs", description="first-come-first-served admission order")
def _build_fcfs() -> SchedulingPolicy:
    return FCFSPolicy()


@register("policy", "priority", description="strict priority classes "
                                            "(Request.priority, FCFS within a class)")
def _build_priority(levels: int = 3) -> SchedulingPolicy:
    return PriorityPolicy(levels=levels)


@register("policy", "sjf", description="shortest predicted job first")
def _build_sjf() -> SchedulingPolicy:
    return SJFPolicy()


def resolve_policy(policy: "SchedulingPolicy | str | None") -> SchedulingPolicy:
    """Build a policy from a spec string (``None`` means ``"fcfs"``)."""
    if policy is None:
        return FCFSPolicy()
    return resolve("policy", policy)


class Scheduler:
    """Owns request lifecycle state and produces per-step decisions.

    The running set is keyed by request id (an insertion-ordered dict), so
    membership tests, retirement and cancellation are O(1) instead of the
    former engine's O(n) list scans; the waiting queue is a rank-keyed heap
    (O(log n) push/pop with lazy removal of cancelled entries), preserving
    PR 3's removal of the O(n²) ``pop(0)`` admission cost for every policy.
    """

    def __init__(self, policy: SchedulingPolicy, max_concurrency: int) -> None:
        if max_concurrency <= 0:
            raise ValueError("max_concurrency must be positive")
        self.policy = policy
        self.max_concurrency = max_concurrency
        #: Rank-keyed min-heap of (rank, push-seq, state); ranks include a
        #: request-id tiebreak so ordering matches a stable policy sort.
        self._waiting: list[tuple] = []
        self._push_seq = 0
        self._n_waiting = 0
        self.running: dict[str, SequenceState] = {}
        self.finished: list[SequenceState] = []
        self.n_preemptions = 0
        #: Victims preempted since the last plan() call (admission included).
        self._victims: list[SequenceState] = []

    # -- the waiting queue ----------------------------------------------
    @property
    def n_waiting(self) -> int:
        """Live waiting-queue depth (preempted requeues included)."""
        return self._n_waiting

    @property
    def waiting(self) -> list[SequenceState]:
        """Live waiting states in policy order (a sorted copy for callers)."""
        return [entry[2] for entry in sorted(self._waiting)
                if self._queued(entry[2])]

    @staticmethod
    def _queued(state: SequenceState) -> bool:
        return state.phase in (RequestPhase.WAITING, RequestPhase.PREEMPTED)

    def _push_waiting(self, state: SequenceState) -> None:
        heapq.heappush(self._waiting, (self.policy.rank(state), self._push_seq, state))
        self._push_seq += 1
        self._n_waiting += 1

    def _peek_waiting(self) -> SequenceState | None:
        """The best-ranked live waiting state (drops stale entries lazily)."""
        while self._waiting and not self._queued(self._waiting[0][2]):
            heapq.heappop(self._waiting)
        return self._waiting[0][2] if self._waiting else None

    def _pop_waiting(self) -> SequenceState:
        self._n_waiting -= 1
        return heapq.heappop(self._waiting)[2]

    # -- submission ------------------------------------------------------
    def _check_new_ids(self, states: list[SequenceState]) -> None:
        seen = ({entry[2].request_id for entry in self._waiting
                 if self._queued(entry[2])} | set(self.running))
        for state in states:
            if state.request_id in seen:
                raise ValueError(f"duplicate request_id '{state.request_id}'")
            seen.add(state.request_id)

    def submit(self, states: list[SequenceState]) -> None:
        self._check_new_ids(states)
        for state in states:
            state.phase = RequestPhase.WAITING
            self._push_waiting(state)

    def resubmit(self, states: list[SequenceState]) -> None:
        """Re-queue states drained from another scheduler (cluster requeue).

        A state with generated tokens re-enters as ``PREEMPTED`` so admission
        rebuilds its recompute target (prompt + generated[:-1]) and resumes
        from the preserved last token — the eviction-and-recompute path.
        Ranks derive from the state's *original* :class:`Request` (arrival
        time, priority), so fcfs/priority ordering never penalises a
        re-admitted request for having been drained or preempted.
        """
        self._check_new_ids(states)
        for state in states:
            state.phase = (RequestPhase.PREEMPTED if state.generated
                           else RequestPhase.WAITING)
            self._push_waiting(state)

    def evacuate(self, kv: "KVSpaceManager") -> list[SequenceState]:
        """Remove every live state (replica-failure drain), releasing its KV.

        Returned states are reset like preemption victims — caches dropped,
        prompt/generated tokens and the original request preserved — ready
        for :meth:`resubmit` on a surviving scheduler.  Finished/cancelled
        history stays behind; this does not count as preemption (the
        sequences did nothing wrong — their replica died).
        """
        drained = list(self.running.values())
        for state in drained:
            kv.release(state)
        self.running.clear()
        drained += [entry[2] for entry in self._waiting if self._queued(entry[2])]
        self._waiting.clear()
        self._n_waiting = 0
        for state in drained:
            state.phase = (RequestPhase.PREEMPTED if state.generated
                           else RequestPhase.WAITING)
            state.caches = None
            state.prefilled = 0
            state.next_input = None
            state.resume_next_input = None
            state.proposals = []
            state.spec_session = None
        return drained

    def has_work(self) -> bool:
        return bool(self._n_waiting or self.running)

    # -- admission -------------------------------------------------------
    def admit(self, step: int, now: float, kv: "KVSpaceManager", *,
              whole_prefill: bool,
              on_admit: "Callable[[SequenceState, bool], None]",
              clock: int | None = None) -> list[SequenceState]:
        """Fill free continuous-batching slots in policy order.

        In whole-prefill mode the candidate's full target (plus the decode
        append that follows in the same step) must be reservable up front;
        in chunked mode admission reserves nothing and chunks grow within
        free space.  A policy with ``preempts_for_admission`` may evict
        strictly worse-ranked running sequences to make room.  Admission
        stops at the first candidate that cannot fit, preserving policy
        order under memory pressure — but states still serving a retry
        backoff (``blocked_until_step > clock``) are skipped over rather
        than blocking the queue head.
        """
        if clock is None:
            clock = step
        admitted: list[SequenceState] = []
        deferred: list[SequenceState] = []
        while self._n_waiting and len(self.running) < self.max_concurrency:
            state = self._peek_waiting()
            if state is None:
                break
            if state.blocked_until_step > clock:
                deferred.append(self._pop_waiting())
                continue
            resumed = state.phase is RequestPhase.PREEMPTED
            ckpt = state.checkpoint
            if ckpt is not None and (
                    not state.generated
                    or ckpt.n_tokens != len(state.prompt) + len(state.generated) - 1
                    or not kv.can_restore(ckpt)):
                # Stale or incompatible checkpoint: fall back to the always-
                # correct eviction-and-recompute path.
                state.checkpoint = ckpt = None
            if ckpt is not None:
                # Recompute-free re-entry: reserve and materialise the
                # checkpointed pages now (even in chunked mode — the caches
                # exist the moment admission succeeds), then resume DECODE
                # directly from the preserved last token, skipping PREFILL.
                if not self._make_room(state, ckpt.n_tokens + 1, kv,
                                       admission=True):
                    break
                self._pop_waiting()
                kv.restore(state, ckpt)
                state.checkpoint = None
                state.phase = RequestPhase.DECODE
                state.prefill_target = state.prompt + state.generated[:-1]
                state.prefilled = len(state.prefill_target)
                state.position = ckpt.n_tokens
                state.next_input = state.generated[-1]
                state.resume_next_input = None
                first = state.admitted_step < 0
                if first:
                    state.admitted_step = step
                    state.admitted_wall = now
                on_admit(state, first)
                self.running[state.request_id] = state
                admitted.append(state)
                continue
            state.prefill_target = (state.prompt + state.generated[:-1]
                                    if resumed and state.generated else
                                    list(state.prompt))
            need = len(state.prefill_target) + 1 if whole_prefill else 0
            if need and not self._make_room(state, need, kv, admission=True):
                break
            # Admission preemption only evicts strictly worse-ranked victims,
            # so the candidate is still the heap head after _make_room.
            self._pop_waiting()
            state.phase = RequestPhase.PREFILL
            state.prefilled = 0
            state.caches = None
            state.position = len(state.prefill_target)
            state.resume_next_input = (state.generated[-1]
                                       if resumed and state.generated else None)
            first = state.admitted_step < 0
            if first:
                state.admitted_step = step
                state.admitted_wall = now
            on_admit(state, first)
            self.running[state.request_id] = state
            admitted.append(state)
        for state in deferred:
            self._push_waiting(state)
        return admitted

    def has_blocked(self, clock: int) -> bool:
        """Whether any queued state is serving a retry backoff at ``clock``."""
        return any(self._queued(entry[2]) and entry[2].blocked_until_step > clock
                   for entry in self._waiting)

    def _make_room(self, state: SequenceState, projected: int,
                   kv: "KVSpaceManager", *, admission: bool = False,
                   protected: set[str] | None = None) -> bool:
        """Reserve ``projected`` total tokens for ``state``, evicting victims.

        Victim candidates are running sequences other than ``state`` and any
        ``protected`` ids; at admission time only policies that opt in may
        preempt, and only strictly worse-ranked victims.  Returns whether
        the reservation succeeded.
        """
        while not kv.reserve(state, projected):
            if kv.last_failure_spurious:
                # Injected allocation pressure: evicting victims cannot cure
                # it and the draw is stable within this clock — just wait.
                return False
            candidates = [s for s in self.running.values() if s is not state
                          and (protected is None or s.request_id not in protected)]
            if admission:
                if not self.policy.preempts_for_admission:
                    return False
                rank = self.policy.rank(state)
                candidates = [s for s in candidates if self.policy.rank(s) > rank]
            victim = self.policy.victim(candidates)
            if victim is None:
                if not admission and not self.running.keys() - {state.request_id}:
                    raise RuntimeError(
                        f"request '{state.request_id}' needs {projected} KV tokens "
                        f"but the pool capacity is {kv.capacity_tokens}; it cannot "
                        "run even with every other sequence preempted")
                return False
            self.preempt(victim, kv)
        return True

    # -- per-step planning ----------------------------------------------
    def decode_ready(self) -> list[SequenceState]:
        """Sequences fully prefilled with decode tokens remaining (run order)."""
        return [s for s in self.running.values()
                if s.prefill_done and s.decode_remaining > 0]

    def prefill_pending(self) -> list[SequenceState]:
        """Sequences with caches resolved but unprefilled tokens (run order)."""
        return [s for s in self.running.values()
                if s.caches is not None and s.prefilled < len(s.prefill_target)]

    def plan(self, step: int, kv: "KVSpaceManager", *, token_budget: int | None,
             spec_on: bool, chunkable: bool) -> ScheduleDecision:
        """Produce this step's :class:`ScheduleDecision`.

        Reproduces the pre-refactor budget discipline exactly: decode (and
        speculative verify) tokens are charged against ``token_budget``
        first, and only the leftover budget is spent on prompt chunks.
        Under a bounded KV pool, growth is granted in policy-rank order and
        worst-ranked victims are preempted to make room.
        """
        decision = ScheduleDecision(step=step)
        decision.decode_ready = self.decode_ready()
        decode_charge = len(decision.decode_ready)
        if spec_on:
            budget_left = (None if token_budget is None
                           else token_budget - len(decision.decode_ready))
            for state in decision.decode_ready:
                cap = state.decode_remaining - 1
                if budget_left is not None:
                    cap = min(cap, budget_left)
                # A state admitted while speculation was browned out has no
                # drafter session even though spec_on is back — it simply
                # decodes non-speculatively.
                state.proposals = (state.spec_session.propose(
                    state.prompt + state.generated, max_tokens=cap)
                    if cap > 0 and state.spec_session is not None else [])
                decode_charge += len(state.proposals)
                if budget_left is not None:
                    budget_left -= len(state.proposals)
        # Whole-target batched prefill: fresh sequences without chunk support
        # or running without a token budget.
        decision.prefill_whole = [
            s for s in self.running.values()
            if s.caches is not None and s.prefilled == 0 and s.next_input is None
            and (not chunkable or token_budget is None)]
        if kv.bounded:
            self._grant_growth(decision, kv)
        whole_ids = {id(s) for s in decision.prefill_whole}
        # Chunked prefill: decode keeps strict priority over prompt chunks.
        pending = self.prefill_pending()
        if pending:
            budget = (None if token_budget is None
                      else max(0, token_budget - decode_charge))
            for state in pending:
                if id(state) in whole_ids:
                    continue
                remaining = len(state.prefill_target) - state.prefilled
                chunk = remaining if budget is None else min(budget, remaining)
                if chunk <= 0:
                    break  # budget exhausted: later pending sequences wait
                if kv.bounded:
                    growth = kv.max_growth(state)
                    if growth < chunk + 1:
                        # Radix snapshots may be hoarding the free space (the
                        # +1 covers a completing chunk's same-step decode).
                        kv.reclaim(chunk + 1)
                        growth = kv.max_growth(state)
                    chunk = min(chunk, growth)
                    if (chunk > 0 and chunk + 1 > growth
                            and state.prefilled + chunk == len(state.prefill_target)):
                        # A chunk that completes the target decodes this same
                        # step; without room for that append, stop one short.
                        chunk -= 1
                    if chunk <= 0:
                        continue  # KV pressure: retry once space frees up
                    need = state.prefilled + chunk
                    if need == len(state.prefill_target):
                        need += 1  # the same-step decode append
                    if not kv.reserve(state, need):
                        continue  # page-rounding edge: wait for space instead
                decision.prefill_chunks.append((state, chunk))
                if budget is not None:
                    budget -= chunk
        stalled = self._n_waiting or any(
            s.caches is None or s.prefilled < len(s.prefill_target)
            for s in self.running.values())
        if (kv.bounded and not decision.has_model_work and stalled
                and len(self.running) > 1):
            # Nothing runnable but live work exists: relieve the pressure by
            # evicting the worst-ranked running sequence so the best one can
            # make progress next step.  A lone running sequence is never its
            # own victim — that would livelock; footprint validation at
            # submission guarantees it can fit once everything else is gone,
            # so the engine's stall guard covers the residue.
            victim = self.policy.victim(list(self.running.values()))
            if victim is not None:
                self.preempt(victim, kv)
        # Victims accumulated since the last plan() — admission-time evictions
        # included — are handed over in one place.
        decision.preempted, self._victims = self._victims, []
        return decision

    def _grant_growth(self, decision: ScheduleDecision, kv: "KVSpaceManager") -> None:
        """Reserve rigid KV growth in policy-rank order, evicting victims.

        Rigid growers — decode/verify appends and whole-target prefills —
        must fit in full; a grower that cannot fit even after every
        unprotected victim is evicted is itself preempted (recompute later
        is always correct).  Chunked prefills are flexible (their chunk
        shrinks to the free space) and are handled by the caller.
        """
        granted: set[str] = set()
        rigid = [(s, s.position + 1 + len(s.proposals)) for s in decision.decode_ready]
        rigid += [(s, len(s.prefill_target) + 1) for s in decision.prefill_whole]
        for state, projected in sorted(rigid, key=lambda item: self.policy.rank(item[0])):
            if not state.is_running:
                continue  # already evicted as an earlier grower's victim
            if self._make_room(state, projected, kv, protected=granted):
                granted.add(state.request_id)
            else:
                self.preempt(state, kv)
        decision.decode_ready = [s for s in decision.decode_ready if s.is_running]
        decision.prefill_whole = [s for s in decision.prefill_whole if s.is_running]

    # -- lifecycle transitions ------------------------------------------
    def preempt(self, state: SequenceState, kv: "KVSpaceManager") -> None:
        """Evict a running sequence: release its KV space, preserve tokens."""
        kv.release(state)
        self.running.pop(state.request_id, None)
        state.phase = RequestPhase.PREEMPTED
        state.caches = None
        state.prefilled = 0
        state.next_input = None
        state.resume_next_input = None
        state.proposals = []
        state.spec_session = None
        state.n_preemptions += 1
        self.n_preemptions += 1
        self._victims.append(state)
        self._push_waiting(state)

    def extract(self, state: SequenceState, kv: "KVSpaceManager") -> None:
        """Remove one live state from this scheduler entirely (live migration).

        Unlike preemption, the state leaves *every* scheduler set — the
        caller takes ownership, typically to inject it into another
        session.  A queued state's heap entry is removed physically, not
        lazily: the extracted state re-enters another scheduler as
        WAITING/PREEMPTED, and a stale local heap entry would then look live
        to :meth:`_queued` and double-admit it.  Does not count as
        preemption and is not pushed back on the waiting queue.
        """
        if state.request_id in self.running:
            self.running.pop(state.request_id)
        else:
            before = len(self._waiting)
            self._waiting = [e for e in self._waiting if e[2] is not state]
            if len(self._waiting) != before:
                heapq.heapify(self._waiting)
                self._n_waiting -= 1
        kv.release(state)  # idempotent: a queued state holds nothing
        state.phase = (RequestPhase.PREEMPTED if state.generated
                       else RequestPhase.WAITING)
        state.caches = None
        state.prefilled = 0
        state.next_input = None
        state.resume_next_input = None
        state.proposals = []
        state.spec_session = None

    def retire_finished(self) -> list[SequenceState]:
        """Move fully-decoded sequences out of the running set (run order)."""
        done = [s for s in self.running.values()
                if s.prefill_done and s.decode_remaining <= 0]
        for state in done:
            self.running.pop(state.request_id)
            state.phase = RequestPhase.FINISHED
            self.finished.append(state)
        return done

    def _terminate(self, state: SequenceState, kv: "KVSpaceManager",
                   phase: RequestPhase) -> None:
        """Move a live state to a terminal phase, releasing any KV space.

        Handles every live phase uniformly: a running state leaves the
        running set, a queued (waiting/preempted) one is dropped lazily from
        the heap on the next peek.  ``kv.release`` is idempotent for queued
        states (no caches, zero reservation), so pages can never leak or be
        resurrected by a later re-admission sweep.
        """
        if not state.is_live:
            return
        if state.request_id in self.running:
            self.running.pop(state.request_id)
        else:
            self._n_waiting -= 1  # heap entry is dropped lazily on peek
        kv.release(state)
        state.phase = phase
        state.caches = None
        state.spec_session = None
        state.checkpoint = None  # terminal: never restored, free the copy
        self.finished.append(state)

    def cancel(self, state: SequenceState, kv: "KVSpaceManager") -> None:
        """Cancel a waiting or running request, releasing any KV space."""
        self._terminate(state, kv, RequestPhase.CANCELLED)

    def timeout(self, state: SequenceState, kv: "KVSpaceManager") -> None:
        """Expire a request past its ``deadline_steps`` (terminal)."""
        self._terminate(state, kv, RequestPhase.TIMEOUT)

    def fail(self, state: SequenceState, kv: "KVSpaceManager") -> None:
        """Give up on a request whose transient retries are exhausted."""
        self._terminate(state, kv, RequestPhase.FAILED)

    def live_states(self) -> list[SequenceState]:
        """Every waiting (unsorted) and running state — membership sweeps
        (e.g. cancellation checks) that don't care about policy order."""
        return ([entry[2] for entry in self._waiting if self._queued(entry[2])]
                + list(self.running.values()))

    def check_legal(self) -> None:
        """Assert the scheduler's state machine is in a legal configuration.

        The paranoid-mode invariant sweep (run every step under chaos):
        running states must be mid-prefill or mid-decode with consistent
        progress counters, queued states must hold no KV, terminal states
        must be terminal, and no request may appear in two sets at once.
        """
        terminal = (RequestPhase.FINISHED, RequestPhase.CANCELLED,
                    RequestPhase.TIMEOUT, RequestPhase.FAILED)
        queued_ids = set()
        for entry in self._waiting:
            state = entry[2]
            if not self._queued(state):
                continue
            queued_ids.add(state.request_id)
            assert state.caches is None, (
                f"queued request '{state.request_id}' holds caches")
            assert state.reserved_tokens == 0, (
                f"queued request '{state.request_id}' holds a KV reservation")
        for request_id, state in self.running.items():
            assert request_id == state.request_id, (
                f"running key '{request_id}' maps to '{state.request_id}'")
            assert state.phase in (RequestPhase.PREFILL, RequestPhase.DECODE), (
                f"running request '{request_id}' in phase {state.phase.value}")
            assert request_id not in queued_ids, (
                f"request '{request_id}' is both queued and running")
            assert len(state.generated) <= state.request.decode_len, (
                f"request '{request_id}' decoded past its decode_len")
            assert state.prefilled <= len(state.prefill_target), (
                f"request '{request_id}' prefilled past its target")
        for state in self.finished:
            assert state.phase in terminal, (
                f"retired request '{state.request_id}' in live phase "
                f"{state.phase.value}")
            assert state.reserved_tokens == 0, (
                f"terminal request '{state.request_id}' holds a KV reservation")

    def find(self, request_id: str) -> SequenceState | None:
        state = self.running.get(request_id)
        if state is not None:
            return state
        for entry in self._waiting:
            if self._queued(entry[2]) and entry[2].request_id == request_id:
                return entry[2]
        return None


__all__ = [
    "FCFSPolicy",
    "PriorityPolicy",
    "RequestPhase",
    "SJFPolicy",
    "ScheduleDecision",
    "SchedulingPolicy",
    "Scheduler",
    "SequenceState",
    "resolve_policy",
]
