"""Edge-serving hardware simulation: Figure 13 systems plus live traffic.

Part 1 reproduces the paper's Figure 13 comparison: LLaMA2-7B serving the
PG19 long-generation workload (512-token prompt, 8192 generated tokens,
batch 16) on the five baseline systems, with speedup / energy efficiency
normalised to Original+SRAM.

Part 2 goes beyond the paper: a :class:`repro.ServingEngine` serves a bursty
multi-request arrival trace on the Kelle system with continuous-batching
admission, reporting per-request queueing, tail latency and the energy bill --
the multi-tenant traffic scenario single-trace simulation cannot express.

Run with::

    python examples/edge_serving_simulation.py [model-name]
"""

from __future__ import annotations

import sys

from repro import ServingEngine, resolve, simulate
from repro.baselines.systems import baseline_suite
from repro.serve import poisson_requests
from repro.utils.units import seconds_to_human


def main(model_name: str = "llama2-7b", n_requests: int = 12) -> None:
    model = resolve("model", model_name)
    trace = resolve("trace", "pg19")
    suite = baseline_suite(kv_budget=2048)
    reference = simulate("original+sram", model, trace)

    print(f"Serving {model.name} on the PG19 trace "
          f"(context {trace.context_len}, decode {trace.decode_len}, batch {trace.batch_size})\n")
    header = f"{'system':<18}{'latency':>14}{'energy (kJ)':>14}{'speedup':>10}{'energy eff.':>13}"
    print(header)
    print("-" * len(header))
    for name, system in suite.items():
        result = system.simulate(model, trace)
        print(f"{name:<18}{seconds_to_human(result.total_latency_s):>14}"
              f"{result.total_energy_j / 1e3:>14.1f}"
              f"{result.speedup_over(reference):>9.2f}x"
              f"{result.energy_efficiency_over(reference):>12.2f}x")

    kelle = simulate("kelle+edram:kv_budget=2048", model, trace)
    print("\nKelle+eDRAM energy breakdown:")
    for component, energy in sorted(kelle.energy.components.items(), key=lambda kv: -kv[1]):
        print(f"  {component:<18}{energy / 1e3:>10.2f} kJ   ({kelle.energy.fraction(component):5.1%})")

    print("\n--- multi-request serving (beyond the paper) ---")
    engine = ServingEngine("kelle+edram:kv_budget=2048", model, max_concurrency=4)
    requests = poisson_requests(n_requests, rate_rps=0.02, prompt_len=512, decode_len=1024,
                                length_jitter=0.5, seed=0)
    report = engine.run(requests)
    print(report.summary())


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "llama2-7b")
