"""Request-level serving on top of the accelerator model.

* :mod:`repro.serve.engine` -- :class:`Request`, :class:`ServingEngine` and
  the spec-driven :func:`simulate` helper.  The engine simulates
  continuous-batching admission of a multi-request arrival trace onto one
  :class:`repro.accelerator.accelerator.EdgeSystem`, with per-request latency
  and energy accounting; :meth:`ServingEngine.run_functional` drives the same
  admission loop against a real :class:`repro.llm.model.DecoderLM` through
  the batched decode path, measuring real tokens/s.
"""

from repro.serve.engine import (
    FunctionalRequestResult,
    FunctionalServingReport,
    Request,
    RequestResult,
    ServingEngine,
    ServingReport,
    poisson_requests,
    simulate,
)

__all__ = [
    "FunctionalRequestResult",
    "FunctionalServingReport",
    "Request",
    "RequestResult",
    "ServingEngine",
    "ServingReport",
    "poisson_requests",
    "simulate",
]
