"""AERP KV cache: per-head eviction plus popularity-driven recomputation.

This is the functional implementation of Section 4.1 of the paper.  Each
decoder layer owns one :class:`AERPCache`; within a layer the cache keeps at
most ``budget`` tokens *per attention head*, evicting the token with the
lowest accumulated attention score (Equation 3) whenever a new token arrives
at a full head.  Sink tokens (the first few positions) and the most recent
tokens are protected from eviction, following StreamingLLM/H2O practice and
Section 7.1 of the paper.

Recomputation: tokens retained by at least ``popularity_threshold`` of the
heads ("popular" tokens) are stored as their block *input vector* ``x`` (C
elements) instead of per-head key/value pairs (2C elements across all heads);
their K/V are recomputed on demand through the layer's projection weights.
The same code path provides the storage accounting used by the accelerator
energy model and keeps the functional effect of fault injection honest: 2DRP
bit flips are applied to whatever representation is actually stored.

Storage layout: all live entries' K/V and importance values live in
preallocated contiguous pools (``[H, capacity, d]`` / ``[H, capacity]``,
amortised-doubling growth, freed rows recycled).  Each :class:`TokenEntry`'s
``keys``/``values``/``importance`` arrays are *views* into its pool row, so
``fetch`` gathers a head's slots with one fancy-indexed copy instead of a
per-slot Python loop, and ``observe_attention`` updates importance with one
vectorised scatter-add per head.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.llm.cache import LayerKVCache, RecomputeFn
from repro.core.importance import ImportanceTracker
from repro.core.refresh import KVFaultInjector
from repro.utils.rng import derive_rng

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.core.aerp import AERPConfig


@dataclass
class TokenEntry:
    """Book-keeping for one token held by the cache (across heads).

    ``keys``/``values``/``importance`` are views into the cache's contiguous
    pools; mutate them in place (``entry.keys[...] = ...``) rather than
    rebinding the attributes.
    """

    token_index: int
    position: int
    x: np.ndarray
    keys: np.ndarray  # [H, head_dim] pool view
    values: np.ndarray  # [H, head_dim] pool view
    importance: np.ndarray  # [H] pool view
    retaining_heads: set[int]
    storage_format: str = "kv"  # "kv" or "x"
    is_sink: bool = False
    corrupted: bool = False
    created_step: int = 0
    observation_count: int = 0
    recomputed: tuple[np.ndarray, np.ndarray] | None = field(default=None, repr=False)

    def mean_importance(self) -> float:
        """Mean accumulated score over the heads still retaining the token."""
        if not self.retaining_heads:
            return 0.0
        heads = sorted(self.retaining_heads)
        return float(np.mean(self.importance[heads]))

    def importance_rate(self) -> float:
        """Mean attention received per query observed (age-normalised importance).

        Using the per-query rate rather than the raw accumulated sum makes the
        HST/LST classification fair between long-resident pre-fill tokens and
        freshly decoded tokens.
        """
        return self.mean_importance() / max(1, self.observation_count)


class AERPCache(LayerKVCache):
    """Per-layer KV cache implementing AERP (Section 4.1) with optional 2DRP faults."""

    def __init__(self, n_heads: int, head_dim: int, d_model: int, config: "AERPConfig",
                 recompute_fn: RecomputeFn, injector: KVFaultInjector | None = None,
                 seed: int = 0, layer_index: int = 0) -> None:
        super().__init__(n_heads, head_dim, d_model)
        self.config = config
        self.recompute_fn = recompute_fn
        self.injector = injector or KVFaultInjector()
        self._rng = derive_rng(seed, "aerp", layer_index)
        self._entries: dict[int, TokenEntry] = {}
        self._slots: list[list[int]] = [[] for _ in range(n_heads)]
        self._next_token_index = 0
        self._current_position = -1
        self._step = 0
        # Fetch snapshot: the slot lists are shared by reference and only
        # copied if the cache mutates between fetch and observe_attention
        # (copy-on-write; never happens in the decode loop).
        self._last_fetch_slots: list[list[int]] | None = None
        self._last_fetch_rows: list[np.ndarray] | None = None
        self._fetch_stale = False
        self.eviction_count = 0
        self.recompute_count = 0
        # Contiguous pools; rows are recycled through a free list.
        capacity = max(16, config.budget + config.sink_tokens + 1)
        self._pool_k = np.zeros((n_heads, capacity, head_dim), dtype=np.float32)
        self._pool_v = np.zeros((n_heads, capacity, head_dim), dtype=np.float32)
        self._pool_imp = np.zeros((n_heads, capacity), dtype=np.float64)
        self._rows: dict[int, int] = {}  # token_index -> pool row
        self._free_rows: list[int] = list(range(capacity - 1, -1, -1))

    # ------------------------------------------------------------------
    # Pool management
    # ------------------------------------------------------------------
    def _grow_pools(self, extra: int) -> None:
        capacity = self._pool_k.shape[1]
        needed = capacity - len(self._free_rows) + extra
        if needed <= capacity:
            return
        new_capacity = capacity
        while new_capacity < needed:
            new_capacity *= 2
        for name in ("_pool_k", "_pool_v", "_pool_imp"):
            old = getattr(self, name)
            grown = np.zeros(old.shape[:1] + (new_capacity,) + old.shape[2:], dtype=old.dtype)
            grown[:, :capacity] = old
            setattr(self, name, grown)
        self._free_rows.extend(range(new_capacity - 1, capacity - 1, -1))
        # Re-bind the per-entry views onto the reallocated pools.
        for token_index, entry in self._entries.items():
            row = self._rows[token_index]
            entry.keys = self._pool_k[:, row, :]
            entry.values = self._pool_v[:, row, :]
            entry.importance = self._pool_imp[:, row]
            if entry.recomputed is not None:
                entry.recomputed = (entry.keys, entry.values)

    def _alloc_row(self, token_index: int) -> int:
        self._grow_pools(1)
        row = self._free_rows.pop()
        self._rows[token_index] = row
        return row

    def _snapshot_before_mutation(self) -> None:
        """Detach a live fetch snapshot before the slot lists change."""
        if self._last_fetch_slots is not None and not self._fetch_stale:
            self._last_fetch_slots = [list(slots) for slots in self._slots]
            self._fetch_stale = True

    def _release_entry(self, token_index: int) -> None:
        del self._entries[token_index]
        self._free_rows.append(self._rows.pop(token_index))

    # ------------------------------------------------------------------
    # Introspection helpers used by tests and the experiments
    # ------------------------------------------------------------------
    @property
    def entries(self) -> dict[int, TokenEntry]:
        return self._entries

    def tokens_for_head(self, head: int) -> list[int]:
        """Token indices currently retained by ``head`` (slot order)."""
        return list(self._slots[head])

    def popularity(self, token_index: int) -> float:
        """Fraction of heads retaining the token."""
        entry = self._entries[token_index]
        return len(entry.retaining_heads) / self.n_heads

    @property
    def num_tokens(self) -> int:
        return max((len(slots) for slots in self._slots), default=0)

    @property
    def recompute_fraction(self) -> float:
        """Fraction of live entries stored in recomputation (x) format."""
        if not self._entries:
            return 0.0
        stored_x = sum(1 for e in self._entries.values() if e.storage_format == "x")
        return stored_x / len(self._entries)

    def stored_bytes(self, bits_per_element: int = 16) -> int:
        total_elements = 0
        for entry in self._entries.values():
            if entry.storage_format == "x":
                total_elements += self.d_model
            else:
                total_elements += 2 * self.head_dim * len(entry.retaining_heads)
        return total_elements * bits_per_element // 8

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _is_protected(self, entry: TokenEntry) -> bool:
        """Sink tokens and the most recent window are never evicted."""
        if entry.is_sink:
            return True
        return entry.position > self._current_position - self.config.recent_window

    def _classify_high_score(self, entry: TokenEntry) -> bool:
        """HST/LST classification relative to the median live importance rate."""
        if len(self._entries) <= 1:
            return True
        scores = np.array([e.importance_rate() for e in self._entries.values()])
        return entry.importance_rate() >= float(np.median(scores))

    def _corrupt_entry(self, entry: TokenEntry, is_high_score: bool) -> None:
        """Apply the 2DRP fault model to whatever representation is stored."""
        if entry.corrupted or self.injector.is_noop:
            entry.corrupted = True
            return
        if entry.storage_format == "x":
            entry.x = self.injector.corrupt(entry.x, is_high_score, self._rng)
            entry.recomputed = None
        else:
            entry.keys[...] = self.injector.corrupt(entry.keys, is_high_score, self._rng)
            entry.values[...] = self.injector.corrupt(entry.values, is_high_score, self._rng)
        entry.corrupted = True

    def _choose_format(self, retained_heads: int) -> str:
        """Storage-format decision of Figure 7 (a)."""
        if not self.config.recompute_enabled:
            return "kv"
        popularity = retained_heads / self.n_heads
        if popularity < self.config.popularity_threshold:
            return "kv"
        if self.recompute_fraction >= self.config.max_recompute_fraction:
            return "kv"
        return "x"

    def _evict_from_head(self, head: int) -> None:
        """Remove the lowest-importance eligible token from ``head``."""
        slots = self._slots[head]
        candidates = [tok for tok in slots if not self._is_protected(self._entries[tok])]
        if not candidates:
            candidates = [tok for tok in slots if not self._entries[tok].is_sink]
        if not candidates:
            candidates = list(slots)
        victim = min(candidates, key=lambda tok: self._entries[tok].importance[head])
        slots.remove(victim)
        entry = self._entries[victim]
        entry.retaining_heads.discard(head)
        self.eviction_count += 1
        if not entry.retaining_heads:
            self._release_entry(victim)

    def _recomputed_kv(self, entry: TokenEntry) -> tuple[np.ndarray, np.ndarray]:
        if entry.recomputed is None:
            keys, values = self.recompute_fn(entry.x, entry.position)
            # Recomputed K/V are written back into the entry's pool row so the
            # fetch gather serves both storage formats from the same buffers.
            entry.keys[...] = keys
            entry.values[...] = values
            entry.recomputed = (entry.keys, entry.values)
            self.recompute_count += 1
        return entry.recomputed

    def _make_entry(self, position: int, x: np.ndarray, keys: np.ndarray, values: np.ndarray,
                    importance: np.ndarray, retaining_heads: set[int], *, is_sink: bool,
                    observation_count: int = 0) -> TokenEntry:
        """Allocate a pool row, write K/V/importance into it and build the entry."""
        token_index = self._next_token_index
        self._next_token_index += 1
        row = self._alloc_row(token_index)
        self._pool_k[:, row, :] = keys
        self._pool_v[:, row, :] = values
        self._pool_imp[:, row] = importance
        entry = TokenEntry(
            token_index=token_index,
            position=position,
            x=np.array(x, dtype=np.float32),
            keys=self._pool_k[:, row, :],
            values=self._pool_v[:, row, :],
            importance=self._pool_imp[:, row],
            retaining_heads=retaining_heads,
            is_sink=is_sink,
            created_step=self._step,
            observation_count=observation_count,
        )
        entry.storage_format = self._choose_format(len(retaining_heads))
        self._entries[token_index] = entry
        return entry

    # ------------------------------------------------------------------
    # LayerKVCache interface
    # ------------------------------------------------------------------
    def prefill(self, keys: np.ndarray, values: np.ndarray, inputs: np.ndarray,
                attn_probs: np.ndarray) -> None:
        keys = np.asarray(keys, dtype=np.float32)
        values = np.asarray(values, dtype=np.float32)
        inputs = np.asarray(inputs, dtype=np.float32)
        self._snapshot_before_mutation()
        n_ctx = keys.shape[1]
        self._current_position = n_ctx - 1
        importance = ImportanceTracker.prefill_importance(attn_probs)  # [H, N]
        budget = self.config.budget

        retained = np.zeros((self.n_heads, n_ctx), dtype=bool)  # head x token
        forced = np.zeros(n_ctx, dtype=bool)
        forced[:min(self.config.sink_tokens, n_ctx)] = True
        forced[max(0, n_ctx - self.config.recent_window):] = True
        for head in range(self.n_heads):
            if n_ctx <= budget:
                retained[head] = True
                continue
            remaining_budget = max(0, budget - int(forced.sum()))
            others = np.nonzero(~forced)[0]
            # Highest pre-fill importance first; stable sort keeps the original
            # position order among ties, matching list.sort(reverse=True).
            order = others[np.argsort(-importance[head, others], kind="stable")]
            retained[head, forced] = True
            retained[head, order[:remaining_budget]] = True

        for n in range(n_ctx):
            heads = np.nonzero(retained[:, n])[0]
            if heads.size == 0:
                continue
            entry = self._make_entry(
                position=n,
                x=inputs[n],
                keys=keys[:, n, :],
                values=values[:, n, :],
                importance=importance[:, n].astype(np.float64),
                retaining_heads=set(int(h) for h in heads),
                is_sink=n < self.config.sink_tokens,
                observation_count=max(1, n_ctx - n),
            )
            for head in heads:
                self._slots[int(head)].append(entry.token_index)

        # Fault injection for pre-filled entries: classification uses the
        # pre-filling importance ranking.
        live = list(self._entries.values())
        if live and not self.injector.is_noop:
            median = float(np.median([e.importance_rate() for e in live]))
            for entry in live:
                self._corrupt_entry(entry, entry.importance_rate() >= median)

    def append(self, key: np.ndarray, value: np.ndarray, x: np.ndarray, position: int) -> None:
        self._snapshot_before_mutation()
        self._current_position = max(self._current_position, position)
        for head in range(self.n_heads):
            if len(self._slots[head]) >= self.config.budget:
                self._evict_from_head(head)
        entry = self._make_entry(
            position=position,
            x=x,
            keys=key,
            values=value,
            importance=np.zeros(self.n_heads, dtype=np.float64),
            retaining_heads=set(range(self.n_heads)),
            is_sink=position < self.config.sink_tokens,
        )
        for head in range(self.n_heads):
            self._slots[head].append(entry.token_index)

    def fetch(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        # Materialise any recomputation-format entries into their pool rows
        # first, so the per-head gather below covers both storage formats.
        for entry in self._entries.values():
            if entry.storage_format == "x" and entry.recomputed is None:
                self._recomputed_kv(entry)
        n_max = self.num_tokens
        keys = np.zeros((self.n_heads, n_max, self.head_dim), dtype=np.float32)
        values = np.zeros((self.n_heads, n_max, self.head_dim), dtype=np.float32)
        valid = np.zeros((self.n_heads, n_max), dtype=bool)
        rows_by_head: list[np.ndarray] = []
        for head in range(self.n_heads):
            slots = self._slots[head]
            rows = np.fromiter((self._rows[tok] for tok in slots), dtype=np.int64,
                               count=len(slots))
            rows_by_head.append(rows)
            if rows.size:
                keys[head, :rows.size] = self._pool_k[head, rows]
                values[head, :rows.size] = self._pool_v[head, rows]
                valid[head, :rows.size] = True
        self._last_fetch_slots = self._slots  # shared; copied on mutation
        self._last_fetch_rows = rows_by_head
        self._fetch_stale = False
        return keys, values, valid

    def observe_attention(self, probs: np.ndarray) -> None:
        if self._last_fetch_slots is None:
            raise RuntimeError("observe_attention called before fetch")
        probs = np.asarray(probs, dtype=np.float64)
        observed: set[int] = set()
        # Fast path applies only when no append/eviction ran since the fetch
        # (tracked copy-on-write): unchanged slot lists imply every
        # (head, token) pair is still retained and every token still occupies
        # its fetched pool row.
        rows_valid = not self._fetch_stale
        for head in range(self.n_heads):
            slots = self._last_fetch_slots[head]
            if not slots:
                continue
            if rows_valid:
                rows = self._last_fetch_rows[head]
                self._pool_imp[head, rows] += probs[head, :rows.size]
                observed.update(slots)
            else:
                # Slow path: the cache mutated between fetch and observe.
                for slot, token_index in enumerate(slots):
                    entry = self._entries.get(token_index)
                    if entry is not None and head in entry.retaining_heads:
                        entry.importance[head] += probs[head, slot]
                        observed.add(token_index)
        for token_index in observed:
            entry = self._entries.get(token_index)
            if entry is not None:
                entry.observation_count += 1
        self._last_fetch_slots = None
        self._last_fetch_rows = None
        self._fetch_stale = False
        # Lazy 2DRP fault injection: an entry is corrupted once, after it has
        # been resident for at least one step (so its HST/LST class reflects
        # observed importance rather than defaulting to "new token").
        if self.injector.is_noop:
            return
        for entry in self._entries.values():
            if not entry.corrupted and entry.created_step < self._step:
                self._corrupt_entry(entry, self._classify_high_score(entry))

    def end_step(self) -> None:
        self._step += 1
