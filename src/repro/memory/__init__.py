"""Analytical memory-device models used by the Kelle accelerator model.

The numbers come directly from the paper: Table 1 (65 nm, 4 MB SRAM vs
3T-eDRAM characterised with Destiny), Figure 4 (retention-failure
distribution at 105 C) and Section 8 (bandwidths, DRAM configuration).
"""

from repro.memory.device import MemoryDevice, AccessKind
from repro.memory.sram import make_weight_sram, make_sram
from repro.memory.edram import (
    EDRAMArray,
    EDRAMBank,
    RefreshController,
    RefreshGroupSpec,
    make_edram,
)
from repro.memory.dram import make_lpddr4
from repro.memory.retention import RetentionModel, DEFAULT_RETENTION_MODEL
from repro.memory.bitops import (
    FP16_BITS,
    LSB_MASK,
    MSB_MASK,
    float16_to_bits,
    bits_to_float16,
    inject_bit_flips,
    inject_bit_flips_fp16,
)

__all__ = [
    "MemoryDevice",
    "AccessKind",
    "make_sram",
    "make_weight_sram",
    "make_edram",
    "EDRAMArray",
    "EDRAMBank",
    "RefreshController",
    "RefreshGroupSpec",
    "make_lpddr4",
    "RetentionModel",
    "DEFAULT_RETENTION_MODEL",
    "FP16_BITS",
    "MSB_MASK",
    "LSB_MASK",
    "float16_to_bits",
    "bits_to_float16",
    "inject_bit_flips",
    "inject_bit_flips_fp16",
]
