"""Figure 16: roofline analysis of recomputation and long-input-sequence study.

(a) Roofline operating points of Kelle under no / moderate / excessive
    recomputation.
(b) Energy breakdown across long input sequences (2K-16K input crossed with
    128/512/2K output), split into prefill and decode contributions.
"""

from __future__ import annotations

from repro.accelerator.accelerator import EdgeSystem
from repro.accelerator.roofline import RooflineModel, recomputation_sweep
from repro.baselines.systems import build_kelle_edram, build_original_sram
from repro.llm.config import get_config
from repro.utils.tables import TableResult
from repro.workloads.generator import WorkloadTrace, long_context_traces


def run_roofline(model_name: str = "llama2-7b", dataset_budget: int = 2048,
                 fractions: tuple[float, ...] = (0.0, 0.15, 0.6)) -> TableResult:
    """Figure 16 (a): roofline points for no / moderate / over recomputation."""
    model = get_config(model_name)
    trace = WorkloadTrace("pg19", 512, 8192, 16)
    kelle = build_kelle_edram(kv_budget=dataset_budget)
    roofline = RooflineModel.for_system(kelle)
    points = recomputation_sweep(kelle.config, model, trace, fractions=fractions)
    table = TableResult(
        title="Figure 16 (a): roofline of recomputation settings",
        columns=["setting", "operational_intensity", "performance_ops_per_s", "attainable_ops_per_s",
                 "compute_bound"],
    )
    for point in points:
        table.add_row(
            setting=point.name,
            operational_intensity=point.operational_intensity,
            performance_ops_per_s=point.performance_ops_per_s,
            attainable_ops_per_s=roofline.attainable(point.operational_intensity),
            compute_bound=roofline.is_compute_bound(point.operational_intensity),
        )
    return table


def run_long_sequences(model_name: str = "llama2-7b", kv_budget: int = 2048) -> TableResult:
    """Figure 16 (b): energy breakdown and gains across long input sequences."""
    model = get_config(model_name)
    kelle = build_kelle_edram(kv_budget=kv_budget)
    baseline = build_original_sram()
    table = TableResult(
        title="Figure 16 (b): long input sequences",
        columns=["trace", "context_len", "decode_len", "prefill_energy_frac", "decode_energy_frac",
                 "dram_energy_frac", "energy_efficiency"],
    )
    for trace in long_context_traces():
        kelle_result = kelle.simulate(model, trace)
        base_result = baseline.simulate(model, trace)
        total = kelle_result.total_energy_j
        table.add_row(
            trace=trace.name,
            context_len=trace.context_len,
            decode_len=trace.decode_len,
            prefill_energy_frac=kelle_result.prefill.energy_total_j / total,
            decode_energy_frac=kelle_result.decode.energy_total_j / total,
            dram_energy_frac=kelle_result.energy.fraction("dram"),
            energy_efficiency=kelle_result.energy_efficiency_over(base_result),
        )
    return table


def run() -> dict[str, TableResult]:
    """Both Figure 16 panels."""
    return {
        "roofline": run_roofline(),
        "long_sequences": run_long_sequences(),
    }
