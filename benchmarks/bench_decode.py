"""Decode-throughput benchmark: legacy list cache vs contiguous vs batched.

Measures prefill and decode tokens/s of the auto-regressive hot loop in three
regimes and writes ``BENCH_decode.json``:

* ``legacy_list`` — the pre-contiguous baseline: a full KV cache backed by a
  Python list of per-token arrays, re-stacked with ``np.stack`` on every
  fetch (re-implemented here so the regression is measurable forever);
* ``sequential`` — the contiguous-buffer caches, one sequence at a time;
* ``batched`` — the contiguous caches driven by
  :meth:`DecoderLM.prefill_batch` / :meth:`DecoderLM.decode_step_batch`
  with ``--batch`` sequences per forward pass.

It also measures eval throughput (teacher-forced forced-decode scoring, the
regime :func:`repro.eval.harness.evaluate_dataset` runs in) for the legacy
sequential harness vs the batched path.

Usage::

    PYTHONPATH=src python benchmarks/bench_decode.py            # full run
    PYTHONPATH=src python benchmarks/bench_decode.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.llm.cache import LayerKVCache
from repro.llm.config import tiny_config
from repro.llm.functional import log_softmax
from repro.llm.model import DecoderLM
from repro.registry import resolve


class _LegacyListKVCache(LayerKVCache):
    """The seed repo's list-backed full cache (pre-PR reference for speedups)."""

    def __init__(self, n_heads: int, head_dim: int, d_model: int) -> None:
        super().__init__(n_heads, head_dim, d_model)
        self._keys: list[np.ndarray] = []
        self._values: list[np.ndarray] = []

    def prefill(self, keys, values, inputs, attn_probs):
        del inputs, attn_probs
        for n in range(keys.shape[1]):
            self._keys.append(np.array(keys[:, n, :], dtype=np.float32))
            self._values.append(np.array(values[:, n, :], dtype=np.float32))

    def append(self, key, value, x, position):
        del x, position
        self._keys.append(np.array(key, dtype=np.float32))
        self._values.append(np.array(value, dtype=np.float32))

    def fetch(self):
        keys = np.stack(self._keys, axis=1)
        values = np.stack(self._values, axis=1)
        valid = np.ones((self.n_heads, keys.shape[1]), dtype=bool)
        return keys, values, valid

    def observe_attention(self, probs):
        del probs

    @property
    def num_tokens(self):
        return len(self._keys)

    def stored_bytes(self, bits_per_element: int = 16) -> int:
        elements = 2 * len(self._keys) * self.n_heads * self.head_dim
        return elements * bits_per_element // 8


def _legacy_factory(layer_index, n_heads, head_dim, d_model, recompute_fn):
    del layer_index, recompute_fn
    return _LegacyListKVCache(n_heads, head_dim, d_model)


def _bench_model(prompt_len: int, decode_len: int) -> DecoderLM:
    config = tiny_config("bench-decode", n_layers=4, d_model=64, n_heads=4, d_ff=128,
                         vocab_size=128, max_seq_len=prompt_len + decode_len + 8)
    return DecoderLM(config, seed=0)


def _run_sequential(model, prompts, decode_len, factory,
                    continuations=None) -> tuple[float, float]:
    """(prefill_s, decode_s) for one pass over ``prompts``, one sequence at a time.

    With ``continuations`` the decode phase scores those tokens (teacher
    forcing, the eval-harness regime); otherwise it feeds back greedy picks.
    """
    prefill_s = decode_s = 0.0
    for index, prompt in enumerate(prompts):
        caches = model.make_caches(factory)
        start = time.perf_counter()
        logits = model.prefill(prompt, caches)
        prefill_s += time.perf_counter() - start
        position = len(prompt)
        start = time.perf_counter()
        for step in range(decode_len):
            if continuations is not None:
                token = continuations[index][step]
            else:
                token = int(np.argmax(log_softmax(logits)))
            if step == decode_len - 1:
                break
            logits = model.decode_step(token, position, caches)
            position += 1
        decode_s += time.perf_counter() - start
    return prefill_s, decode_s


def _run_batched(model, prompts, decode_len, factory,
                 continuations=None) -> tuple[float, float]:
    """(prefill_s, decode_s) for one pass over ``prompts`` as a single batch."""
    caches_batch = [model.make_caches(factory) for _ in prompts]
    start = time.perf_counter()
    logits = model.prefill_batch(prompts, caches_batch)
    prefill_s = time.perf_counter() - start
    positions = [len(prompt) for prompt in prompts]
    start = time.perf_counter()
    for step in range(decode_len):
        if continuations is not None:
            tokens = [cont[step] for cont in continuations]
        else:
            tokens = np.argmax(log_softmax(logits, axis=-1), axis=-1).tolist()
        if step == decode_len - 1:
            break
        logits = model.decode_step_batch(tokens, positions, caches_batch)
        positions = [position + 1 for position in positions]
    return prefill_s, time.perf_counter() - start


def _best_rates(runner, repeats, n_prefill_tokens, n_decode_tokens):
    """Best-of-``repeats`` (prefill tok/s, decode tok/s, end-to-end tok/s)."""
    best = (0.0, 0.0, 0.0)
    for _ in range(repeats):
        prefill_s, decode_s = runner()
        rates = (n_prefill_tokens / prefill_s, n_decode_tokens / decode_s,
                 n_decode_tokens / (prefill_s + decode_s))
        if rates[2] > best[2]:
            best = rates
    return {"prefill_tokens_per_s": best[0], "decode_tokens_per_s": best[1],
            "end_to_end_decode_tokens_per_s": best[2]}


def run_benchmark(prompt_len: int, decode_len: int, batch: int, policies: list[str],
                  repeats: int) -> dict:
    model = _bench_model(prompt_len, decode_len)
    rng = np.random.default_rng(0)
    vocab = model.config.vocab_size
    prompts = [rng.integers(0, vocab, size=prompt_len).tolist() for _ in range(batch)]
    continuations = [rng.integers(0, vocab, size=decode_len).tolist() for _ in range(batch)]
    n_prefill = batch * prompt_len
    n_decode = batch * decode_len

    results: dict = {
        "config": {
            "model": model.config.name,
            "n_layers": model.config.n_layers,
            "d_model": model.config.d_model,
            "prompt_len": prompt_len,
            "decode_len": decode_len,
            "batch": batch,
            "repeats": repeats,
        },
        "policies": {},
    }

    def show(label, rates):
        print(f"{label:42s}: prefill {rates['prefill_tokens_per_s']:9.0f} tok/s | "
              f"decode {rates['decode_tokens_per_s']:9.0f} tok/s | "
              f"e2e {rates['end_to_end_decode_tokens_per_s']:9.0f} tok/s")

    legacy = _best_rates(lambda: _run_sequential(model, prompts, decode_len, _legacy_factory),
                         repeats, n_prefill, n_decode)
    results["legacy_list_full"] = legacy
    show("legacy list-backed full cache (seq)", legacy)

    for spec in policies:
        factory = resolve("cache", spec)
        sequential = _best_rates(
            lambda: _run_sequential(model, prompts, decode_len, factory),
            repeats, n_prefill, n_decode)
        batched = _best_rates(
            lambda: _run_batched(model, prompts, decode_len, factory),
            repeats, n_prefill, n_decode)
        entry = {"sequential": sequential, "batched": batched}
        if spec == "full":
            entry["decode_speedup_sequential_vs_legacy"] = (
                sequential["decode_tokens_per_s"] / legacy["decode_tokens_per_s"])
            entry["decode_speedup_batched_vs_legacy"] = (
                batched["decode_tokens_per_s"] / legacy["decode_tokens_per_s"])
        results["policies"][spec] = entry
        show(f"{spec} (seq)", sequential)
        show(f"{spec} (batched B={batch})", batched)

    # Eval-harness regime: teacher-forced scoring, legacy sequential harness
    # vs the batched path (what evaluate_dataset(batch_size=B) now runs).
    eval_legacy = _best_rates(
        lambda: _run_sequential(model, prompts, decode_len, _legacy_factory,
                                continuations=continuations),
        repeats, n_prefill, n_decode)
    eval_batched = _best_rates(
        lambda: _run_batched(model, prompts, decode_len, resolve("cache", "full"),
                             continuations=continuations),
        repeats, n_prefill, n_decode)
    results["eval"] = {
        "legacy_sequential_harness": eval_legacy,
        "batched": eval_batched,
        "scored_speedup_batched_vs_legacy_harness": (
            eval_batched["end_to_end_decode_tokens_per_s"]
            / eval_legacy["end_to_end_decode_tokens_per_s"]),
    }
    show("eval forced-decode legacy harness (seq)", eval_legacy)
    show(f"eval forced-decode (batched B={batch})", eval_batched)

    full = results["policies"].get("full")
    if full is not None:
        print(f"decode speedup vs pre-PR list-backed path: "
              f"{full['decode_speedup_batched_vs_legacy']:.1f}x batched, "
              f"{full['decode_speedup_sequential_vs_legacy']:.1f}x sequential")
    print(f"eval speedup vs sequential legacy harness: "
          f"{results['eval']['scored_speedup_batched_vs_legacy_harness']:.1f}x")
    return results


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--prompt-len", type=int, default=512)
    parser.add_argument("--decode-len", type=int, default=128)
    parser.add_argument("--batch", type=int, default=8)
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats per measurement (best is kept)")
    parser.add_argument("--policies", nargs="*", default=[
        "full",
        "streaming_llm:budget=128,sink_tokens=8",
        "h2o:budget=128,sink_tokens=8,recent_window=32",
        "kelle:budget=128,sink_tokens=8,recent_window=32,refresh=none",
    ])
    parser.add_argument("--quick", action="store_true",
                        help="small geometry for CI smoke runs")
    parser.add_argument("--out", type=Path, default=Path("BENCH_decode.json"))
    args = parser.parse_args()

    if args.quick:
        args.prompt_len, args.decode_len, args.batch, args.repeats = 64, 16, 4, 1
        args.policies = ["full", "h2o:budget=32,sink_tokens=4,recent_window=8"]

    results = run_benchmark(args.prompt_len, args.decode_len, args.batch,
                            args.policies, args.repeats)
    args.out.write_text(json.dumps(results, indent=2))
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
