"""Figure 13: end-to-end speedup and energy efficiency of the five systems.

The paper evaluates Original+SRAM, Original+eDRAM, AEP+SRAM, AERP+SRAM and
Kelle+eDRAM on Lambada, TriviaQA, Qasper and PG19 across several model sizes
(batch 16) and reports speedup / energy efficiency normalised to
Original+SRAM, plus the on-chip energy breakdown of Kelle+eDRAM.
"""

from __future__ import annotations

from repro.baselines.systems import baseline_suite
from repro.experiments.common import HARDWARE_BUDGETS, HARDWARE_MODELS, simulate_system
from repro.utils.tables import TableResult

SYSTEM_ORDER = ("original+sram", "original+edram", "aep+sram", "aerp+sram", "kelle+edram")


def run(model_names: tuple[str, ...] = HARDWARE_MODELS,
        datasets: tuple[str, ...] = ("lambada", "triviaqa", "qasper", "pg19")) -> TableResult:
    """Speedup and energy efficiency of every system, normalised to Original+SRAM."""
    table = TableResult(
        title="Figure 13: end-to-end speedup and energy efficiency",
        columns=["model", "dataset", "system", "latency_s", "energy_j", "speedup", "energy_efficiency"],
    )
    for model_name in model_names:
        for dataset in datasets:
            budget = HARDWARE_BUDGETS[dataset]
            suite = baseline_suite(kv_budget=budget)
            reference = simulate_system(suite["original+sram"], model_name, dataset)
            for system_name in SYSTEM_ORDER:
                result = simulate_system(suite[system_name], model_name, dataset)
                table.add_row(
                    model=model_name,
                    dataset=dataset,
                    system=system_name,
                    latency_s=result.total_latency_s,
                    energy_j=result.total_energy_j,
                    speedup=result.speedup_over(reference),
                    energy_efficiency=result.energy_efficiency_over(reference),
                )
    return table


def run_energy_breakdown(model_name: str = "llama2-7b", dataset: str = "pg19") -> TableResult:
    """The Kelle+eDRAM on-chip energy breakdown pie of Figure 13."""
    suite = baseline_suite(kv_budget=HARDWARE_BUDGETS[dataset])
    result = simulate_system(suite["kelle+edram"], model_name, dataset)
    energy = result.energy
    onchip = energy.onchip_total()
    table = TableResult(
        title="Figure 13: Kelle+eDRAM on-chip energy breakdown",
        columns=["component", "energy_j", "fraction_of_onchip"],
    )
    groups = {
        "rsa": energy.get("rsa") + energy.get("sfu"),
        "kv": energy.get("kv_onchip") + energy.get("refresh") + energy.get("activation_buffer"),
        "sram": energy.get("weight_sram"),
        "other": energy.get("leakage") + energy.get("evictor"),
    }
    for component, value in groups.items():
        table.add_row(component=component, energy_j=value,
                      fraction_of_onchip=value / onchip if onchip else 0.0)
    return table


def average_improvements(table: TableResult) -> tuple[float, float]:
    """Mean Kelle+eDRAM speedup and energy efficiency across all rows."""
    kelle_rows = [row for row in table.rows if row["system"] == "kelle+edram"]
    if not kelle_rows:
        raise ValueError("table contains no kelle+edram rows")
    speedup = sum(row["speedup"] for row in kelle_rows) / len(kelle_rows)
    efficiency = sum(row["energy_efficiency"] for row in kelle_rows) / len(kelle_rows)
    return speedup, efficiency
