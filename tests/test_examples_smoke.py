"""Smoke tests for the examples: import and run ``main()`` under tiny budgets.

These guard the public API the examples demonstrate -- an API refactor that
breaks an example now fails the suite instead of silently rotting the docs.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    """Import one example module by file path."""
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestQuickstart:
    def test_main_runs_under_tiny_step_budget(self, capsys):
        quickstart = load_example("quickstart")
        quickstart.main(steps=4, gen_tokens=6, n_docs=2)
        output = capsys.readouterr().out
        assert "Kelle" in output
        assert "bytes of KV storage" in output


class TestEdgeServingSimulation:
    def test_main_runs_with_small_request_budget(self, capsys):
        example = load_example("edge_serving_simulation")
        example.main("llama2-7b", n_requests=3)
        output = capsys.readouterr().out
        assert "kelle+edram" in output
        assert "ServingEngine report" in output
        assert "original+sram" in output

    def test_main_rejects_unknown_model(self):
        from repro.registry import RegistryError

        example = load_example("edge_serving_simulation")
        with pytest.raises(RegistryError):
            example.main("not-a-model", n_requests=2)
