"""Figure 3: motivation experiments.

(a) Normalised decode latency of edge systems with 4 MB versus 8 MB on-chip
    SRAM across sequence lengths.
(b) Area breakdown of 8 MB-eDRAM versus 8 MB-SRAM systems.
(c) Energy breakdown of the unoptimised eDRAM system (guard refresh) across
    models and decoding lengths.
"""

from __future__ import annotations

from repro.accelerator.accelerator import AcceleratorConfig, EdgeSystem
from repro.accelerator.area import area_report
from repro.accelerator.memory_subsystem import MemorySubsystem
from repro.llm.config import get_config
from repro.utils.tables import TableResult
from repro.utils.units import MB
from repro.workloads.generator import WorkloadTrace


def _sram_system(kv_capacity_bytes: int, name: str) -> EdgeSystem:
    return EdgeSystem(AcceleratorConfig(
        name=name,
        pe_rows=32,
        pe_cols=32,
        memory=MemorySubsystem.sram_baseline(kv_capacity_bytes=kv_capacity_bytes),
        kv_policy="full",
        refresh="none",
    ))


def run_latency(model_name: str = "llama2-7b",
                decode_lengths: tuple[int, ...] = (1024, 2048, 4096, 8192),
                prefill_len: int = 512, batch_size: int = 16) -> TableResult:
    """Figure 3 (a): decode latency with 4 MB versus 8 MB of on-chip SRAM."""
    model = get_config(model_name)
    small = _sram_system(2 * MB, "sram-4mb")
    large = _sram_system(6 * MB, "sram-8mb")
    table = TableResult(
        title="Figure 3 (a): latency, 4 MB vs 8 MB SRAM",
        columns=["model", "decode_len", "latency_4mb_s", "latency_8mb_s", "speedup_8mb"],
    )
    for decode_len in decode_lengths:
        trace = WorkloadTrace(f"fig3a-{decode_len}", prefill_len, decode_len, batch_size)
        small_result = small.simulate(model, trace)
        large_result = large.simulate(model, trace)
        table.add_row(
            model=model_name,
            decode_len=decode_len,
            latency_4mb_s=small_result.total_latency_s,
            latency_8mb_s=large_result.total_latency_s,
            speedup_8mb=large_result.speedup_over(small_result),
        )
    return table


def run_area() -> TableResult:
    """Figure 3 (b): area breakdown of the eDRAM-based vs SRAM-based systems."""
    table = TableResult(
        title="Figure 3 (b): area breakdown",
        columns=["system", "rsa_mm2", "onchip_memory_mm2", "sfu_mm2", "onchip_total_mm2", "dram_mm2"],
    )
    configs = {
        "edram-8mb": MemorySubsystem.kelle(kv_capacity_bytes=8 * MB),
        "sram-8mb": MemorySubsystem.sram_baseline(kv_capacity_bytes=8 * MB),
    }
    for name, memory in configs.items():
        system = EdgeSystem(AcceleratorConfig(name=name, memory=memory, systolic_evictor=True,
                                              refresh="guard" if memory.kv_is_edram else "none"))
        report = area_report(system.array, system.sfu, system.memory, system.evictor)
        memory_area = (report.components["weight_sram"] + report.components["activation_buffer"]
                       + report.components["kv_store"])
        table.add_row(
            system=name,
            rsa_mm2=report.components["rsa"],
            onchip_memory_mm2=memory_area,
            sfu_mm2=report.components["sfu"],
            onchip_total_mm2=report.onchip_total,
            dram_mm2=report.components["dram"],
        )
    return table


def run_energy_breakdown(model_names: tuple[str, ...] = ("llama2-7b", "llama2-13b"),
                         decode_lengths: tuple[int, ...] = (1024, 2048, 4096, 8192),
                         prefill_len: int = 512, batch_size: int = 16) -> TableResult:
    """Figure 3 (c): energy breakdown of the unoptimised (guard-refresh) eDRAM system."""
    table = TableResult(
        title="Figure 3 (c): energy breakdown of the unoptimised eDRAM system",
        columns=["model", "decode_len", "refresh_frac", "dram_frac", "buffer_frac", "compute_frac"],
    )
    system = EdgeSystem(AcceleratorConfig(
        name="original+edram",
        memory=MemorySubsystem.kelle(kv_capacity_bytes=8 * MB),
        kv_policy="full",
        refresh="guard",
    ))
    for model_name in model_names:
        model = get_config(model_name)
        for decode_len in decode_lengths:
            trace = WorkloadTrace(f"fig3c-{decode_len}", prefill_len, decode_len, batch_size)
            result = system.simulate(model, trace)
            energy = result.energy
            buffer_frac = (energy.fraction("kv_onchip") + energy.fraction("weight_sram")
                           + energy.fraction("activation_buffer"))
            compute_frac = energy.fraction("rsa") + energy.fraction("sfu")
            table.add_row(
                model=model_name,
                decode_len=decode_len,
                refresh_frac=energy.fraction("refresh"),
                dram_frac=energy.fraction("dram"),
                buffer_frac=buffer_frac,
                compute_frac=compute_frac,
            )
    return table


def run() -> dict[str, TableResult]:
    """All three Figure 3 panels."""
    return {
        "latency": run_latency(),
        "area": run_area(),
        "energy_breakdown": run_energy_breakdown(),
    }
