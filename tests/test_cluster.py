"""Cluster serving tests: routers, prefix digests, failure handling.

Covers the ``"router"`` registry kind, router unit behaviour over
:class:`ReplicaView` lists, the read-only
:meth:`RadixPrefixIndex.longest_match_len` probe, engine
:meth:`~ServingEngine.load_snapshot`, the Zipf shared-prefix workload, and
the :class:`ClusterEngine` end-to-end invariants: token identity against
single-replica serving of the same partition, and 100% completion with clean
accounting when a replica is killed mid-run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.registry import RegistryError, known, resolve
from repro.serve import (
    ClusterEngine,
    LeastLoadedRouter,
    LoadSnapshot,
    PrefixDigest,
    RadixAffinityRouter,
    RadixPrefixIndex,
    ReplicaView,
    Request,
    RoundRobinRouter,
    ServingEngine,
    resolve_router,
)
from repro.workloads import zipf_shared_prefix_requests


def _request(request_id: str, prompt, decode_len: int = 4,
             arrival: float = 0.0) -> Request:
    return Request(request_id=request_id, arrival_time_s=arrival,
                   prompt_len=len(prompt), decode_len=decode_len,
                   prompt_tokens=tuple(prompt))


def _view(replica_id: int, queued: int = 0, running: int = 0,
          inflight: int = 0) -> ReplicaView:
    return ReplicaView(replica_id, LoadSnapshot(
        n_queued=queued, n_running=running, inflight_tokens=inflight))


@pytest.fixture
def lm():
    from repro.llm.config import tiny_config
    from repro.llm.model import DecoderLM

    return DecoderLM(tiny_config("cluster-tiny", n_layers=2, d_model=32,
                                 n_heads=4, d_ff=64, vocab_size=48,
                                 max_seq_len=512), seed=7)


@pytest.fixture
def trace():
    rng = np.random.default_rng(11)
    return [_request(f"r{i}", rng.integers(0, 48, size=12).tolist(),
                     decode_len=5, arrival=i * 0.01) for i in range(10)]


class TestRouterRegistry:
    def test_router_kind_registered(self):
        assert set(known("router")) == {"round-robin", "least-loaded",
                                        "radix-affinity"}

    def test_resolve_round_trips(self):
        router = resolve("router", "radix-affinity:threshold=16")
        assert isinstance(router, RadixAffinityRouter)
        assert router.threshold == 16
        assert router.describe() == "radix-affinity:threshold=16"
        assert isinstance(resolve("router", "rr"), RoundRobinRouter)
        assert isinstance(resolve("router", "least-loaded"), LeastLoadedRouter)

    def test_resolve_router_helper(self):
        assert isinstance(resolve_router(None), RoundRobinRouter)
        built = LeastLoadedRouter()
        assert resolve_router(built) is built

    def test_unknown_router_and_params_raise(self):
        with pytest.raises(RegistryError):
            resolve("router", "consistent-hash")
        with pytest.raises(RegistryError):
            resolve("router", "round-robin:spread=2")

    def test_bad_threshold_raises(self):
        with pytest.raises(ValueError):
            RadixAffinityRouter(threshold=0)


class TestRouterPolicies:
    def test_round_robin_cycles_alive_views(self):
        router = RoundRobinRouter()
        views = [_view(0), _view(2), _view(5)]  # replica 1 already dead
        picks = [router.route(_request(f"q{i}", [1, 2]), views)
                 for i in range(6)]
        assert picks == [0, 2, 5, 0, 2, 5]

    def test_least_loaded_prefers_low_inflight_tokens(self):
        router = LeastLoadedRouter()
        views = [_view(0, inflight=100), _view(1, inflight=10),
                 _view(2, inflight=50)]
        assert router.route(_request("q", [1]), views) == 1

    def test_least_loaded_tiebreaks_on_queue_then_id(self):
        router = LeastLoadedRouter()
        views = [_view(0, queued=3, inflight=10), _view(1, queued=1, inflight=10)]
        assert router.route(_request("q", [1]), views) == 1
        assert router.route(_request("q2", [1]),
                            [_view(1, inflight=5), _view(0, inflight=5)]) == 0

    def test_affinity_falls_back_below_threshold(self):
        router = RadixAffinityRouter(threshold=8)
        views = [_view(0, inflight=100), _view(1, inflight=0)]
        # Nothing observed yet -> no match -> least-loaded fallback.
        assert router.route(_request("q", list(range(20))), views) == 1

    def test_affinity_routes_to_best_digest_match(self):
        router = RadixAffinityRouter(threshold=4)
        views = [_view(0, inflight=0), _view(1, inflight=100)]
        shared = list(range(30, 40))
        # First request lands on the least-loaded replica 0... but force the
        # digest onto the *loaded* replica to show affinity beats load.
        router.digest(1).observe(shared + [1, 2])
        target = router.route(_request("q", shared + [7, 8]), views)
        assert target == 1  # 10-token match >= threshold beats lower load

    def test_affinity_observes_routed_prompts(self):
        router = RadixAffinityRouter(threshold=4)
        views = [_view(0, inflight=0), _view(1, inflight=5)]
        prompt = list(range(10, 22))
        first = router.route(_request("a", prompt), views)
        assert first == 0  # fallback: least loaded
        assert router.digest(0).n_prompts == 1
        # The same prefix now has affinity for replica 0 even when loaded.
        busy = [_view(0, inflight=500), _view(1, inflight=0)]
        assert router.route(_request("b", prompt[:8] + [99, 98]), busy) == 0

    def test_affinity_forget_drops_digest(self):
        router = RadixAffinityRouter(threshold=4)
        prompt = list(range(8))
        router.route(_request("a", prompt), [_view(0), _view(1, inflight=5)])
        router.forget(0)
        assert router.digest(0).n_prompts == 0

    def test_affinity_digest_budget_is_bounded(self):
        router = RadixAffinityRouter(threshold=4, digest_tokens=16)
        digest = router.digest(0)
        digest.observe(list(range(10)))
        digest.observe(list(range(100, 112)))
        assert digest.stored_tokens <= 16  # LRU evicted the older prompt


class TestPrefixDigest:
    def test_observe_and_match(self):
        digest = PrefixDigest()
        digest.observe([1, 2, 3, 4, 5])
        assert digest.longest_match_len([1, 2, 3, 9]) == 3
        assert digest.longest_match_len([7, 8]) == 0
        assert digest.n_prompts == 1 and digest.stored_tokens == 5

    def test_duplicate_observe_refreshes_not_duplicates(self):
        digest = PrefixDigest()
        digest.observe([1, 2, 3])
        digest.observe([1, 2, 3])
        assert digest.n_prompts == 1 and digest.stored_tokens == 3

    def test_empty_prompt_ignored(self):
        digest = PrefixDigest()
        digest.observe([])
        assert digest.n_prompts == 0


class TestLongestMatchLen:
    def test_matches_match_result_without_touching_stats(self):
        index = RadixPrefixIndex()
        index.insert([1, 2, 3, 4, 5, 6], [])
        index.insert([1, 2, 9, 9], [])
        hits, misses = index.hits, index.misses
        for query in ([1, 2, 3, 4], [1, 2, 9], [1, 2], [5, 5], [1, 2, 3, 4, 5, 6, 7]):
            probe = index.longest_match_len(query)
            assert index.hits == hits and index.misses == misses  # read-only
            matched, _ = index.match(query)
            assert probe == matched
            hits, misses = index.hits, index.misses  # match() did count

    def test_probe_does_not_refresh_lru(self):
        index = RadixPrefixIndex(max_tokens=8)
        index.insert([1, 2, 3, 4], [])
        index.insert([5, 6, 7, 8], [])
        # Probing the older entry must NOT protect it from LRU eviction.
        assert index.longest_match_len([1, 2, 3, 4]) == 4
        index.insert([9, 10, 11, 12], [])  # over budget -> evicts LRU = first
        assert index.longest_match_len([1, 2, 3, 4]) == 0
        assert index.longest_match_len([5, 6, 7, 8]) == 4


class TestLoadSnapshot:
    def test_idle_engine_reports_zero_load(self):
        engine = ServingEngine(max_concurrency=2)
        snap = engine.load_snapshot()
        assert snap == LoadSnapshot(0, 0, 0)
        assert snap.n_live == 0

    def test_snapshot_during_session(self, lm, trace):
        engine = ServingEngine(max_concurrency=2)
        session = engine.start_functional(lm)
        session.submit(trace[:4])
        snap = engine.load_snapshot()
        assert snap.n_queued == 4 and snap.n_running == 0
        # Outstanding work: whole prompt + whole decode for each request.
        assert snap.inflight_tokens == sum(len(r.prompt_tokens) + r.decode_len
                                           for r in trace[:4])
        session.step()
        snap = engine.load_snapshot()
        assert snap.n_running == 2 and snap.n_queued == 2
        while session.step():
            pass
        session.finish()
        assert engine.load_snapshot().n_live == 0

    def test_snapshot_reports_free_pool_tokens(self, lm, trace):
        engine = ServingEngine(max_concurrency=2)
        factory = resolve("cache", "paged:page_tokens=8,initial_pages=32,grow=false")
        session = engine.start_functional(lm, cache=factory)
        session.submit(trace[:2])
        snap = engine.load_snapshot()
        assert snap.free_pool_tokens is not None
        session.step()
        assert engine.load_snapshot().free_pool_tokens < snap.free_pool_tokens
        while session.step():
            pass
        session.finish()


class TestZipfWorkload:
    def test_deterministic_in_seed(self):
        kwargs = dict(n_requests=40, n_templates=6, prefix_len=16, suffix_len=4,
                      decode_len=8, vocab_size=64, alpha=1.2, decode_sigma=0.4,
                      seed=5)
        a = zipf_shared_prefix_requests(**kwargs)
        b = zipf_shared_prefix_requests(**kwargs)
        assert [(r.request_id, r.prompt_tokens, r.decode_len, r.arrival_time_s)
                for r in a] == [(r.request_id, r.prompt_tokens, r.decode_len,
                                 r.arrival_time_s) for r in b]
        assert zipf_shared_prefix_requests(**{**kwargs, "seed": 6}) != a

    def test_popularity_is_zipf_skewed(self):
        requests = zipf_shared_prefix_requests(
            n_requests=300, n_templates=8, prefix_len=16, suffix_len=0,
            decode_len=4, vocab_size=64, alpha=1.3, seed=0)
        counts = np.zeros(8, dtype=int)
        for request in requests:
            counts[int(request.request_id[1:].split("r")[0])] += 1
        assert counts[0] == counts.max()       # template 0 dominates
        assert counts[0] >= 3 * counts[-1]     # heavy head vs tail

    def test_shared_prefixes_are_real(self):
        requests = zipf_shared_prefix_requests(
            n_requests=30, n_templates=2, prefix_len=12, suffix_len=4,
            decode_len=4, vocab_size=64, seed=1)
        by_template: dict[str, list] = {}
        for request in requests:
            by_template.setdefault(request.request_id.split("r")[0],
                                   []).append(request.prompt_tokens)
        for prompts in by_template.values():
            first = prompts[0][:12]
            assert all(p[:12] == first for p in prompts)

    def test_decode_spread_clamped(self):
        requests = zipf_shared_prefix_requests(
            n_requests=200, n_templates=2, prefix_len=8, suffix_len=0,
            decode_len=10, vocab_size=32, decode_sigma=2.0,
            max_decode_len=25, seed=2)
        lens = {r.decode_len for r in requests}
        assert min(lens) >= 1 and max(lens) <= 25
        assert len(lens) > 1  # actually spread

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_shared_prefix_requests(0, 2, 8, 0, 4, 32)
        with pytest.raises(ValueError):
            zipf_shared_prefix_requests(4, 2, 8, 0, 4, 32, alpha=0.0)
        with pytest.raises(ValueError):
            zipf_shared_prefix_requests(4, 2, 8, 0, 4, 32, decode_sigma=-1.0)
        with pytest.raises(ValueError):
            zipf_shared_prefix_requests(4, 2, 8, 0, 4, 32, max_decode_len=0)


class TestClusterEngine:
    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterEngine(0)
        with pytest.raises(ValueError):
            ClusterEngine(2, arrivals_per_step=0)
        with pytest.raises(TypeError):
            # One pre-built factory would share a KV pool across replicas.
            ClusterEngine(2, cache=resolve("cache", "paged"))
        with pytest.raises(ValueError):
            ClusterEngine(2, cache=[resolve("cache", "paged")])
        with pytest.raises(ValueError):
            ClusterEngine(2).fail_replica(5)
        with pytest.raises(ValueError):
            ClusterEngine(2).fail_replica(0, at_step=-1)

    def test_empty_and_duplicate_requests_raise(self, lm, trace):
        cluster = ClusterEngine(2)
        with pytest.raises(ValueError):
            cluster.run(lm, [])
        with pytest.raises(ValueError):
            cluster.run(lm, [trace[0], trace[0]])

    def test_token_identity_vs_per_replica_partition(self, lm, trace):
        cluster = ClusterEngine(3, router="round-robin", max_concurrency=2,
                                seed=0)
        report = cluster.run(lm, trace)
        assert report.completed_fraction == 1.0
        assert report.n_requests == len(trace)
        assert set(report.assignments) == {r.request_id for r in trace}
        cluster_tokens = {r.request.request_id: r.generated_tokens
                          for r in report.results}
        # Serve each replica's partition on a standalone single engine: the
        # outputs must be token-identical (routing never changes tokens).
        for replica in range(3):
            partition = [r for r in trace
                         if report.assignments[r.request_id] == replica]
            assert partition  # round-robin touched every replica
            single = ServingEngine(max_concurrency=2).run_functional(
                lm, partition, seed=0)
            for result in single.results:
                assert (result.generated_tokens
                        == cluster_tokens[result.request.request_id])

    def test_routers_agree_on_tokens(self, lm, trace):
        baseline = None
        for router in ("round-robin", "least-loaded",
                       "radix-affinity:threshold=4"):
            report = ClusterEngine(2, router=router, max_concurrency=2,
                                   seed=0).run(lm, trace)
            tokens = {r.request.request_id: r.generated_tokens
                      for r in report.results}
            if baseline is None:
                baseline = tokens
            assert tokens == baseline, router

    def test_affinity_reuses_prefixes_across_replicas(self, lm):
        requests = zipf_shared_prefix_requests(
            n_requests=16, n_templates=4, prefix_len=32, suffix_len=4,
            decode_len=4, vocab_size=48, alpha=1.2, seed=3)
        affinity = ClusterEngine(
            2, router="radix-affinity:threshold=16", max_concurrency=2,
            cache="paged:page_tokens=16", prefix_cache=True, seed=0,
        ).run(lm, requests)
        robin = ClusterEngine(
            2, router="round-robin", max_concurrency=2,
            cache="paged:page_tokens=16", prefix_cache=True, seed=0,
        ).run(lm, requests)
        assert affinity.reused_prefix_tokens > robin.reused_prefix_tokens
        # Same template -> same replica under affinity routing.
        by_template: dict[str, set[int]] = {}
        for request in requests:
            template = request.request_id.split("r")[0]
            by_template.setdefault(template, set()).add(
                affinity.assignments[request.request_id])
        assert all(len(replicas) == 1 for replicas in by_template.values())

    def test_failure_completes_all_requests_token_identically(self, lm, trace):
        factories = [resolve("cache", "paged:page_tokens=16")
                     for _ in range(3)]
        cluster = ClusterEngine(3, router="round-robin", max_concurrency=2,
                                cache=factories, seed=0)
        cluster.fail_replica(1, at_step=2)
        report = cluster.run(lm, trace)
        assert report.completed_fraction == 1.0
        assert report.failed_replicas == [1]
        assert report.n_requeued > 0
        # Every request routed to replica 1 was drained and now reports a
        # surviving replica as its final assignment.
        assert all(replica != 1 for replica in report.assignments.values())
        healthy = ClusterEngine(3, router="round-robin", max_concurrency=2,
                                seed=0).run(lm, trace)
        assert ({r.request.request_id: r.generated_tokens
                 for r in report.results}
                == {r.request.request_id: r.generated_tokens
                    for r in healthy.results})
        # Accounting is clean on every replica, dead one included.
        for factory in factories:
            factory.check_accounting()
            assert factory.referenced_pages == 0

    def test_failure_before_any_step_reroutes_everything(self, lm, trace):
        cluster = ClusterEngine(2, router="round-robin", max_concurrency=2,
                                seed=0)
        cluster.fail_replica(0, at_step=0)
        report = cluster.run(lm, trace)
        assert report.completed_fraction == 1.0
        assert set(report.assignments.values()) == {1}

    def test_all_replicas_failed_raises(self, lm, trace):
        cluster = ClusterEngine(2)
        cluster.fail_replica(0, at_step=0)
        cluster.fail_replica(1, at_step=0)
        with pytest.raises(RuntimeError, match="every replica has failed"):
            cluster.run(lm, trace)

    def test_report_aggregates(self, lm, trace):
        report = ClusterEngine(2, max_concurrency=2, seed=0).run(lm, trace)
        assert report.cluster_steps > 0
        assert report.parallel_wall_s > 0
        assert report.parallel_wall_s <= report.wall_s
        assert report.total_decode_tokens == sum(r.decode_len for r in trace)
        assert report.decode_tokens_per_s > 0
        assert report.load_imbalance >= 1.0
        assert len(report.per_replica_decode_tokens) == 2
        assert report.mean_ttft_s > 0
        assert (report.ttft_percentile_s(50) <= report.ttft_percentile_s(99))
        summary = report.summary()
        assert "2 replicas" in summary and "round-robin" in summary

    def test_arrivals_per_step_throttles_routing(self, lm, trace):
        open_loop = ClusterEngine(2, max_concurrency=2, seed=0,
                                  arrivals_per_step=1).run(lm, trace)
        closed_loop = ClusterEngine(2, max_concurrency=2, seed=0).run(lm, trace)
        assert ({r.request.request_id: r.generated_tokens
                 for r in open_loop.results}
                == {r.request.request_id: r.generated_tokens
                    for r in closed_loop.results})

    def test_least_loaded_balances_skewed_decode_lengths(self, lm):
        # One giant request plus many small ones: round-robin parks half the
        # small requests behind the giant; least-loaded spreads them out.
        rng = np.random.default_rng(4)
        requests = [_request("big", rng.integers(0, 48, size=8).tolist(),
                             decode_len=64, arrival=0.0)]
        requests += [_request(f"s{i}", rng.integers(0, 48, size=8).tolist(),
                              decode_len=2, arrival=0.001 * (i + 1))
                     for i in range(9)]
        robin = ClusterEngine(2, router="round-robin", max_concurrency=1,
                              seed=0).run(lm, requests)
        loaded = ClusterEngine(2, router="least-loaded", max_concurrency=1,
                               seed=0, arrivals_per_step=1).run(lm, requests)
        assert loaded.cluster_steps < robin.cluster_steps
        assert loaded.load_imbalance < robin.load_imbalance
