"""Tests for the DecoderLM model: shapes, decode consistency, variants."""

from __future__ import annotations

import numpy as np
import pytest

from repro.llm.cache import FullKVCache
from repro.llm.config import FULL_SIZE_CONFIGS, ModelConfig, get_config, tiny_config
from repro.llm.model import DecoderLM


class TestModelConfig:
    def test_full_size_param_counts_in_expected_range(self):
        """Parameter counts of the shape configs should land near the model names."""
        expectations = {
            "llama2-7b": (6e9, 8e9),
            "llama2-13b": (12e9, 14.5e9),
            "llama3.2-3b": (2.5e9, 4e9),
            "mistral-7b": (6.5e9, 8e9),
            "opt-6.7b": (6e9, 7.5e9),
        }
        for name, (low, high) in expectations.items():
            params = FULL_SIZE_CONFIGS[name].total_params()
            assert low < params < high, f"{name}: {params:.2e}"

    def test_kv_bytes_per_token(self):
        config = get_config("llama2-7b")
        # 2 vectors x 4096 channels x 2 bytes x 32 layers = 1 MiB per token.
        assert config.kv_bytes_per_token(bits=16) == 2 * 4096 * 2 * 32
        assert config.kv_bytes_per_token_per_layer(bits=16) == 2 * 4096 * 2

    def test_gqa_reduces_kv_footprint(self):
        llama2 = get_config("llama2-7b")
        mistral = get_config("mistral-7b")
        assert mistral.kv_bytes_per_token_per_layer() < llama2.kv_bytes_per_token_per_layer()

    def test_decode_macs_grow_with_context(self):
        config = get_config("llama2-7b")
        assert config.decode_macs_per_token(4096) > config.decode_macs_per_token(128)

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            ModelConfig("bad", 2, 30, 4, 64, 100)  # d_model not divisible by heads
        with pytest.raises(ValueError):
            ModelConfig("bad", 2, 32, 4, 64, 100, norm="weird")
        with pytest.raises(ValueError):
            ModelConfig("bad", 2, 32, 4, 64, 100, n_kv_heads=3)

    def test_get_config_lookup(self):
        assert get_config("tiny-llama2-7b").n_layers >= 2
        with pytest.raises(KeyError):
            get_config("nonexistent-model")


class TestDecoderLM:
    def test_parameter_shapes(self, small_model):
        config = small_model.config
        assert small_model.params["embed.weight"].shape == (config.vocab_size, config.d_model)
        assert small_model.params["layers.0.wq"].shape == (config.d_model, config.d_model)
        assert small_model.num_params() > 0

    def test_forward_full_shapes(self, small_model, rng):
        tokens = rng.integers(0, small_model.config.vocab_size, size=12)
        logits = small_model.forward_full(tokens)
        assert logits.shape == (12, small_model.config.vocab_size)
        batched = small_model.forward_full(np.stack([tokens, tokens]))
        assert batched.shape == (2, 12, small_model.config.vocab_size)
        np.testing.assert_allclose(batched[0], logits, atol=1e-5)

    def test_prefill_matches_full_forward(self, small_model, rng):
        tokens = rng.integers(0, small_model.config.vocab_size, size=10)
        caches = small_model.make_caches()
        logits = small_model.prefill(tokens, caches)
        reference = small_model.forward_full(tokens)[-1]
        np.testing.assert_allclose(logits, reference, atol=1e-4)

    def test_incremental_decode_matches_full_forward(self, small_model, rng):
        tokens = rng.integers(0, small_model.config.vocab_size, size=16)
        caches = small_model.make_caches()
        logits = small_model.prefill(tokens[:6], caches)
        for position, token in enumerate(tokens[6:], start=6):
            logits = small_model.decode_step(int(token), position, caches)
        reference = small_model.forward_full(tokens)[-1]
        np.testing.assert_allclose(logits, reference, atol=1e-3)

    def test_opt_style_decode_matches_full_forward(self, opt_style_model, rng):
        tokens = rng.integers(0, opt_style_model.config.vocab_size, size=12)
        caches = opt_style_model.make_caches()
        logits = opt_style_model.prefill(tokens[:5], caches)
        for position, token in enumerate(tokens[5:], start=5):
            logits = opt_style_model.decode_step(int(token), position, caches)
        reference = opt_style_model.forward_full(tokens)[-1]
        np.testing.assert_allclose(logits, reference, atol=1e-3)

    def test_full_cache_tracks_tokens_and_bytes(self, small_model, rng):
        tokens = rng.integers(0, small_model.config.vocab_size, size=8)
        caches = small_model.make_caches()
        small_model.prefill(tokens, caches)
        cache = caches[0]
        assert isinstance(cache, FullKVCache)
        assert cache.num_tokens == 8
        expected = 2 * 8 * small_model.config.n_heads * small_model.config.head_dim * 2
        assert cache.stored_bytes(16) == expected

    def test_recompute_fn_matches_stored_projection(self, small_model, rng):
        tokens = rng.integers(0, small_model.config.vocab_size, size=6)
        caches = small_model.make_caches()
        small_model.prefill(tokens, caches)
        # Recomputing the K/V of the last prefill position from the block input
        # must reproduce what the attention layer computed.
        config = small_model.config
        hidden = small_model._embed(np.asarray(tokens)[None, :])[0]
        normed = small_model._norm(hidden, "layers.0.attn_norm")
        recompute = small_model.recompute_fn(0)
        k, v = recompute(normed[3], 3)
        keys, values = small_model._project_kv(normed, 0, np.arange(6))
        np.testing.assert_allclose(k, keys[:, 3, :], atol=1e-5)
        np.testing.assert_allclose(v, values[:, 3, :], atol=1e-5)
        assert k.shape == (config.n_heads, config.head_dim)

    def test_gqa_config_not_instantiable(self):
        with pytest.raises(ValueError):
            DecoderLM(get_config("mistral-7b"))

    def test_deterministic_initialisation(self):
        config = tiny_config("det", vocab_size=32)
        a = DecoderLM(config, seed=3)
        b = DecoderLM(config, seed=3)
        np.testing.assert_array_equal(a.params["layers.0.wq"], b.params["layers.0.wq"])
        c = DecoderLM(config, seed=4)
        assert not np.allclose(a.params["layers.0.wq"], c.params["layers.0.wq"])
