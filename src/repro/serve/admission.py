"""Per-tenant admission control: the ``"admission"`` registry kind.

The demand-side counterpart of the fault-handling layers: where PR 7's
``shed_threshold`` was a single blunt drop rule, an
:class:`AdmissionPolicy` sees every arrival *before* it is routed and
returns one of three explicit decisions:

* **ADMIT** — route to a replica now;
* **DEFER** — keep the request in the cluster's deferred queue and re-offer
  it next round (backpressure without loss: a token bucket that will refill,
  a fair queue whose turn is coming);
* **SHED** — terminate it right now with ``status="shed"`` (the explicit
  give-up: the bucket can never fit it, or it has waited past ``max_wait``).

Built-in policies:

* ``none`` — admit everything (the no-admission baseline);
* ``kv-pressure:threshold=X`` — exactly the legacy ``shed_threshold``
  semantics, relocated: shed when the cluster-wide projected KV footprint
  (live + candidate) would exceed ``X`` times the summed pool capacity.
  ``ClusterEngine(shed_threshold=X)`` maps onto this policy, so existing
  callers behave identically;
* ``token-bucket:rate=R,burst=B,max_wait=W,weights=t0=4;t1=2`` — one token
  bucket per tenant, refilled ``R * weight`` KV tokens per round up to
  ``B * weight``; a request costs its full footprint (prompt + decode
  tokens).  Can't pay now → DEFER while the bucket could ever cover it,
  SHED once it waited ``max_wait`` rounds (or could never fit);
* ``weighted-fair:quantum=Q,weights=...`` — stride (virtual-time) scheduling
  across tenants: per round at most ``Q`` admissions, granted to the tenant
  with the lowest virtual time, which advances by ``cost / weight`` per
  grant — long-run KV-token shares proportional to the weights, with an
  optional ``threshold`` KV-pressure gate and ``max_wait`` shedding.

Specs compose like migration specs do —
``admission=["token-bucket:rate=64", "kv-pressure:threshold=0.9"]`` — with
the severest decision winning (SHED > DEFER > ADMIT).

Every decision is a pure function of the round clock, the replica views and
the policy's own counters — no wall clock, no RNG — so admission outcomes
are byte-reproducible run to run, like everything else in the chaos
harness.  Weights are spelled ``weights=t0=4;t1=2`` (``;``-separated inside
the spec-string value; :func:`~repro.registry.parse_spec` splits params on
the *first* ``=`` only, so the value survives intact).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.registry import register, resolve

if TYPE_CHECKING:  # pragma: no cover - typing-only imports
    from repro.serve.engine import Request


class AdmissionDecision(Enum):
    """One arrival's fate this round (ordered by severity)."""

    ADMIT = "admit"
    DEFER = "defer"
    SHED = "shed"


#: Severity order for composing policies: the worst decision wins.
_SEVERITY = {AdmissionDecision.ADMIT: 0, AdmissionDecision.DEFER: 1,
             AdmissionDecision.SHED: 2}


@dataclass(frozen=True)
class AdmissionContext:
    """What a policy may see when deciding one arrival.

    ``projected_kv_tokens`` / ``capacity_tokens`` summarise the alive
    replicas' load (``capacity_tokens`` is ``None`` when any replica is
    unbounded — such a cluster can always absorb more);  ``waited`` is how
    many rounds this candidate has already been deferred (0 for a fresh
    arrival).  Rebuilt per candidate, so earlier admissions in the same
    round are reflected in the pressure a later candidate sees.
    """

    clock: int
    projected_kv_tokens: int = 0
    capacity_tokens: int | None = None
    n_live: int = 0
    waited: int = 0


def parse_weights(weights: "str | Mapping[str, float] | None") -> dict[str, float]:
    """Parse per-tenant weights (``"t0=4;t1=2"`` or a mapping) into a dict."""
    if weights is None or weights == "":
        return {}
    if isinstance(weights, Mapping):
        parsed = {str(k): float(v) for k, v in weights.items()}
    else:
        parsed = {}
        for item in str(weights).split(";"):
            item = item.strip()
            if not item:
                continue
            tenant, sep, value = item.partition("=")
            if not sep or not tenant:
                raise ValueError(f"bad tenant weight {item!r} "
                                 f"(expected 'tenant=weight;...')")
            parsed[tenant] = float(value)
    for tenant, weight in parsed.items():
        if weight <= 0:
            raise ValueError(f"weight for tenant '{tenant}' must be positive")
    return parsed


def _weights_spec(weights: dict[str, float]) -> str:
    return ";".join(f"{t}={w:g}" for t, w in sorted(weights.items()))


class AdmissionPolicy(abc.ABC):
    """Admission policy: decide admit/defer/shed for each arrival.

    The cluster calls :meth:`begin_round` once per round with every
    candidate (deferred requests first, then fresh arrivals), then
    :meth:`decide` per candidate in that order with a freshly-built
    context.  Policies that rank candidates against each other
    (weighted-fair) plan their grants in :meth:`begin_round`; per-request
    policies just implement :meth:`decide`.
    """

    name: str = "admission"

    def begin_round(self, candidates: "Sequence[Request]",
                    ctx: AdmissionContext) -> None:
        """Observe the round's full candidate list (default: nothing)."""

    @abc.abstractmethod
    def decide(self, request: "Request",
               ctx: AdmissionContext) -> AdmissionDecision:
        """This arrival's fate at ``ctx.clock``."""

    def describe(self) -> str:
        return self.name


class AdmitAll(AdmissionPolicy):
    """Admit every arrival (the no-admission baseline)."""

    name = "none"

    def decide(self, request: "Request",
               ctx: AdmissionContext) -> AdmissionDecision:
        return AdmissionDecision.ADMIT


class KVPressureAdmission(AdmissionPolicy):
    """Shed when projected cluster KV would exceed ``threshold`` * capacity.

    Exactly the legacy ``shed_threshold`` rule as a policy: the candidate's
    peak footprint (prompt + decode tokens) plus every live request's, over
    the alive replicas' summed pool capacity.  Never defers; clusters with
    any unbounded replica never shed.
    """

    name = "kv-pressure"

    def __init__(self, threshold: float = 0.85) -> None:
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.threshold = float(threshold)

    def decide(self, request: "Request",
               ctx: AdmissionContext) -> AdmissionDecision:
        if ctx.capacity_tokens is None:
            return AdmissionDecision.ADMIT
        projected = (ctx.projected_kv_tokens + request.prompt_len
                     + request.decode_len)
        if projected > self.threshold * ctx.capacity_tokens:
            return AdmissionDecision.SHED
        return AdmissionDecision.ADMIT

    def describe(self) -> str:
        return f"kv-pressure:threshold={self.threshold:g}"


class TokenBucketAdmission(AdmissionPolicy):
    """Per-tenant token buckets over KV-token cost.

    Tenant ``t``'s bucket holds up to ``burst * weight(t)`` tokens and
    refills ``rate * weight(t)`` per round (lazily, from the round delta).
    A request costs its full KV footprint (prompt + decode tokens):
    affordable → ADMIT (and the bucket pays), otherwise DEFER — the bucket
    is refilling — until the request has waited ``max_wait`` rounds (then
    SHED), or immediately SHED when the cost exceeds the bucket's burst
    ceiling and no amount of waiting could ever cover it.
    """

    name = "token-bucket"

    def __init__(self, rate: float = 32.0, burst: float = 256.0,
                 max_wait: int | None = None,
                 weights: "str | Mapping[str, float] | None" = None) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        if burst <= 0:
            raise ValueError("burst must be positive")
        if max_wait is not None and max_wait <= 0:
            raise ValueError("max_wait must be positive (or None)")
        self.rate = float(rate)
        self.burst = float(burst)
        self.max_wait = max_wait
        self.weights = parse_weights(weights)
        self._level: dict[str, float] = {}
        self._refilled: dict[str, int] = {}

    def weight(self, tenant: str) -> float:
        return self.weights.get(tenant, 1.0)

    def _refill(self, tenant: str, clock: int) -> float:
        weight = self.weight(tenant)
        ceiling = self.burst * weight
        if tenant not in self._level:  # first sight: a full bucket
            self._level[tenant] = ceiling
            self._refilled[tenant] = clock
        elapsed = clock - self._refilled[tenant]
        if elapsed > 0:
            self._level[tenant] = min(
                ceiling, self._level[tenant] + self.rate * weight * elapsed)
            self._refilled[tenant] = clock
        return self._level[tenant]

    def decide(self, request: "Request",
               ctx: AdmissionContext) -> AdmissionDecision:
        tenant = request.tenant
        cost = float(request.prompt_len + request.decode_len)
        level = self._refill(tenant, ctx.clock)
        if cost <= level:
            self._level[tenant] = level - cost
            return AdmissionDecision.ADMIT
        if cost > self.burst * self.weight(tenant):
            return AdmissionDecision.SHED  # could never fit, even full
        if self.max_wait is not None and ctx.waited >= self.max_wait:
            return AdmissionDecision.SHED
        return AdmissionDecision.DEFER

    def describe(self) -> str:
        parts = [f"token-bucket:rate={self.rate:g},burst={self.burst:g}"]
        if self.max_wait is not None:
            parts.append(f"max_wait={self.max_wait}")
        if self.weights:
            parts.append(f"weights={_weights_spec(self.weights)}")
        return ",".join(parts)


class WeightedFairAdmission(AdmissionPolicy):
    """Stride (virtual-time) weighted-fair admission across tenants.

    Per round at most ``quantum`` candidates are granted.  Grants go to the
    queued candidate whose tenant has the lowest virtual time; a grant
    advances that tenant's virtual time by ``cost / weight``, so long-run
    admitted KV-token shares converge to the weight ratios while an idle
    tenant's next request is served promptly (its virtual time is lifted to
    the global floor, the classic start-time rule).  An optional
    ``threshold`` adds the KV-pressure gate on top; ``max_wait`` bounds how
    long a candidate may sit deferred before it is shed.
    """

    name = "weighted-fair"

    def __init__(self, quantum: int = 4,
                 weights: "str | Mapping[str, float] | None" = None,
                 max_wait: int | None = None,
                 threshold: float | None = None) -> None:
        if quantum <= 0:
            raise ValueError("quantum must be positive")
        if max_wait is not None and max_wait <= 0:
            raise ValueError("max_wait must be positive (or None)")
        if threshold is not None and threshold <= 0:
            raise ValueError("threshold must be positive (or None)")
        self.quantum = quantum
        self.weights = parse_weights(weights)
        self.max_wait = max_wait
        self.threshold = threshold
        self._vtime: dict[str, float] = {}
        self._granted: set[str] = set()

    def weight(self, tenant: str) -> float:
        return self.weights.get(tenant, 1.0)

    def begin_round(self, candidates: "Sequence[Request]",
                    ctx: AdmissionContext) -> None:
        """Pick this round's grants by lowest tenant virtual time."""
        self._granted = set()
        queues: dict[str, list] = {}
        for request in candidates:
            queues.setdefault(request.tenant, []).append(request)
        floor = min(self._vtime.values(), default=0.0)
        for tenant in queues:
            # Lift idle/new tenants to the floor so they can't bank credit.
            self._vtime[tenant] = max(self._vtime.get(tenant, floor), floor)
        for _ in range(min(self.quantum, len(candidates))):
            ready = [t for t, q in queues.items() if q]
            if not ready:
                break
            tenant = min(ready, key=lambda t: (self._vtime[t], t))
            request = queues[tenant].pop(0)
            cost = float(request.prompt_len + request.decode_len)
            self._vtime[tenant] += cost / self.weight(tenant)
            self._granted.add(request.request_id)

    def decide(self, request: "Request",
               ctx: AdmissionContext) -> AdmissionDecision:
        if request.request_id in self._granted:
            if self.threshold is not None and ctx.capacity_tokens is not None:
                projected = (ctx.projected_kv_tokens + request.prompt_len
                             + request.decode_len)
                if projected > self.threshold * ctx.capacity_tokens:
                    # Granted a turn but the KV can't hold it yet: wait.
                    return (AdmissionDecision.SHED
                            if (self.max_wait is not None
                                and ctx.waited >= self.max_wait)
                            else AdmissionDecision.DEFER)
            return AdmissionDecision.ADMIT
        if self.max_wait is not None and ctx.waited >= self.max_wait:
            return AdmissionDecision.SHED
        return AdmissionDecision.DEFER

    def describe(self) -> str:
        parts = [f"weighted-fair:quantum={self.quantum}"]
        if self.threshold is not None:
            parts.append(f"threshold={self.threshold:g}")
        if self.max_wait is not None:
            parts.append(f"max_wait={self.max_wait}")
        if self.weights:
            parts.append(f"weights={_weights_spec(self.weights)}")
        return ",".join(parts)


class CompositeAdmission(AdmissionPolicy):
    """Compose policies; the severest decision wins (SHED > DEFER > ADMIT)."""

    name = "composite"

    def __init__(self, policies: "Sequence[AdmissionPolicy]") -> None:
        if not policies:
            raise ValueError("composite admission needs at least one policy")
        self.policies = list(policies)

    def begin_round(self, candidates: "Sequence[Request]",
                    ctx: AdmissionContext) -> None:
        for policy in self.policies:
            policy.begin_round(candidates, ctx)

    def decide(self, request: "Request",
               ctx: AdmissionContext) -> AdmissionDecision:
        worst = AdmissionDecision.ADMIT
        for policy in self.policies:
            decision = policy.decide(request, ctx)
            if _SEVERITY[decision] > _SEVERITY[worst]:
                worst = decision
        return worst

    def describe(self) -> str:
        return " + ".join(p.describe() for p in self.policies)


# ----------------------------------------------------------------------
# Registry wiring
# ----------------------------------------------------------------------
@register("admission", "none", "admit-all",
          description="admit every arrival (no admission control)")
def _build_admit_all() -> AdmissionPolicy:
    return AdmitAll()


@register("admission", "kv-pressure",
          description="shed when projected cluster KV exceeds threshold * "
                      "capacity (the legacy shed_threshold rule)")
def _build_kv_pressure(threshold: float = 0.85) -> AdmissionPolicy:
    return KVPressureAdmission(threshold=float(threshold))


@register("admission", "token-bucket",
          description="per-tenant token buckets over KV-token cost; "
                      "defer while refilling, shed past max_wait")
def _build_token_bucket(rate: float = 32.0, burst: float = 256.0,
                        max_wait: int | None = None,
                        weights: str | None = None) -> AdmissionPolicy:
    return TokenBucketAdmission(rate=float(rate), burst=float(burst),
                                max_wait=max_wait, weights=weights)


@register("admission", "weighted-fair",
          description="stride scheduling across tenants: quantum grants per "
                      "round by lowest virtual time, weighted KV shares")
def _build_weighted_fair(quantum: int = 4, weights: str | None = None,
                         max_wait: int | None = None,
                         threshold: float | None = None) -> AdmissionPolicy:
    return WeightedFairAdmission(quantum=quantum, weights=weights,
                                 max_wait=max_wait, threshold=threshold)


def resolve_admission(
        admission: "AdmissionPolicy | str | Sequence | None",
        shed_threshold: float | None = None) -> AdmissionPolicy | None:
    """Build an admission policy from any accepted form.

    ``None`` with a ``shed_threshold`` gives the backward-compatible
    :class:`KVPressureAdmission`; ``None`` alone disables admission control
    entirely (zero per-arrival overhead).  A sequence composes its members
    with severest-decision-wins; when ``shed_threshold`` is also set it
    joins the composition.
    """
    if admission is None:
        if shed_threshold is None:
            return None
        return KVPressureAdmission(threshold=shed_threshold)
    if isinstance(admission, AdmissionPolicy):
        policy = admission
    elif isinstance(admission, (list, tuple)):
        parts = [resolve_admission(spec) for spec in admission]
        parts = [p for p in parts if p is not None]
        policy = (CompositeAdmission(parts) if len(parts) > 1
                  else parts[0] if parts else None)
        if policy is None:
            return resolve_admission(None, shed_threshold)
    else:
        policy = resolve("admission", admission)
    if shed_threshold is not None:
        policy = CompositeAdmission(
            [policy, KVPressureAdmission(threshold=shed_threshold)])
    return policy


__all__ = [
    "AdmissionContext",
    "AdmissionDecision",
    "AdmissionPolicy",
    "AdmitAll",
    "CompositeAdmission",
    "KVPressureAdmission",
    "TokenBucketAdmission",
    "WeightedFairAdmission",
    "parse_weights",
    "resolve_admission",
]
