"""Numerical primitives shared by the inference and training paths."""

from __future__ import annotations

from functools import lru_cache

import numpy as np


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    x = np.asarray(x, dtype=np.float32)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def log_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax along ``axis``."""
    x = np.asarray(x, dtype=np.float32)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Elementwise logistic sigmoid.

    Piecewise-stable form: the ``exp`` argument is always non-positive
    (``-x`` where ``x >= 0``, ``x`` elsewhere), so neither branch can
    overflow; per-element results match evaluating each branch on its own
    sign partition.
    """
    x = np.asarray(x, dtype=np.float32)
    pos = x >= 0
    ex = np.exp(np.where(pos, -x, x))
    return np.where(pos, 1.0 / (1.0 + ex), ex / (1.0 + ex))


def silu(x: np.ndarray) -> np.ndarray:
    """SiLU / swish activation used by the gated MLP (LLaMA family)."""
    return x * sigmoid(x)


def gelu(x: np.ndarray) -> np.ndarray:
    """GeLU activation (tanh approximation) used by the standard MLP (OPT/GPT)."""
    x = np.asarray(x, dtype=np.float32)
    return 0.5 * x * (1.0 + np.tanh(np.sqrt(2.0 / np.pi) * (x + 0.044715 * x**3)))


def rms_norm(x: np.ndarray, weight: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    """Root-mean-square layer normalisation (LLaMA family).

    Same op sequence as ``x / sqrt(mean(x*x) + eps) * weight`` (pairwise
    reduce-sum then divide, exactly what ``np.mean`` performs) with the
    intermediate reductions done in place — the decode hot loop calls this
    twice per layer per step.
    """
    x = np.asarray(x, dtype=np.float32)
    sq = x * x
    ms = np.add.reduce(sq, axis=-1, keepdims=True)
    ms /= x.shape[-1]
    ms += eps
    np.sqrt(ms, out=ms)
    out = x / ms
    out *= weight
    return out


def layer_norm(x: np.ndarray, weight: np.ndarray, bias: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    """Standard layer normalisation (OPT/GPT family)."""
    x = np.asarray(x, dtype=np.float32)
    mean = np.mean(x, axis=-1, keepdims=True)
    var = np.var(x, axis=-1, keepdims=True)
    return (x - mean) / np.sqrt(var + eps) * weight + bias


def rope_frequencies(head_dim: int, max_seq_len: int, base: float = 10000.0) -> tuple[np.ndarray, np.ndarray]:
    """Precompute the cosine/sine tables for rotary position embeddings."""
    if head_dim % 2 != 0:
        raise ValueError("head_dim must be even for RoPE")
    inv_freq = 1.0 / (base ** (np.arange(0, head_dim, 2, dtype=np.float32) / head_dim))
    positions = np.arange(max_seq_len, dtype=np.float32)
    angles = np.outer(positions, inv_freq)  # [T, head_dim/2]
    return np.cos(angles), np.sin(angles)


def apply_rope(x: np.ndarray, positions: np.ndarray, cos: np.ndarray, sin: np.ndarray) -> np.ndarray:
    """Apply rotary embeddings.

    ``x`` has shape ``[..., T, head_dim]`` (head dim last); ``positions`` has
    shape ``[T]`` giving the absolute position of each of the T vectors, or is
    an int ``T`` meaning positions ``0..T-1`` (served from a table *view*, so
    repeated prefills of common lengths allocate nothing).
    """
    x = np.asarray(x, dtype=np.float32)
    head_dim = x.shape[-1]
    half = head_dim // 2
    if isinstance(positions, (int, np.integer)):
        c = cos[:positions]  # [T, half] view, no copy
        s = sin[:positions]
    else:
        c = cos[positions]  # [T, half]
        s = sin[positions]
    x1 = x[..., :half]
    x2 = x[..., half:]
    # Same elementwise ops as (x1*c - x2*s | x2*c + x1*s) concatenated,
    # scheduled through one output array: the second half doubles as the
    # x2*s scratch before the subtraction, so the whole rotation allocates
    # two arrays instead of seven.
    out = np.empty(x.shape, dtype=np.float32)
    first = out[..., :half]
    second = out[..., half:]
    np.multiply(x1, c, out=first)
    np.multiply(x2, s, out=second)
    first -= second
    np.multiply(x2, c, out=second)
    second += x1 * s
    return out


def cross_entropy(logits: np.ndarray, targets: np.ndarray) -> float:
    """Mean cross entropy (nats) of ``targets`` under ``logits``.

    ``logits`` has shape ``[..., V]`` and ``targets`` the matching leading
    shape of integer class indices.
    """
    logp = log_softmax(logits, axis=-1)
    flat_logp = logp.reshape(-1, logp.shape[-1])
    flat_targets = np.asarray(targets).reshape(-1)
    picked = flat_logp[np.arange(flat_targets.size), flat_targets]
    return float(-np.mean(picked))


@lru_cache(maxsize=1)
def _causal_mask_table(capacity: int) -> np.ndarray:
    mask = np.zeros((capacity, capacity), dtype=np.float32)
    mask[np.triu_indices(capacity, k=1)] = -np.inf
    mask.flags.writeable = False
    return mask


_mask_capacity = 256  # high-water mark so alternating sizes never rebuild the table


def causal_mask(size: int) -> np.ndarray:
    """Additive causal mask of shape ``[size, size]`` (0 on/below diag, -inf above).

    All sizes are served as read-only views of one shared grow-only table
    (doubled when outgrown), so repeated prefills stop re-allocating ``[T, T]``
    arrays and at most one table is ever resident.
    """
    global _mask_capacity
    size = int(size)
    while _mask_capacity < size:
        _mask_capacity *= 2
    return _causal_mask_table(_mask_capacity)[:size, :size]
