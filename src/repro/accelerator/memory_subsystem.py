"""Hybrid memory subsystem of the Kelle accelerator (Section 5.1).

The subsystem combines a 2 MB weight SRAM, a 256 KB activation eDRAM, a 4 MB
KV-cache eDRAM (32 banks, split into Key/Value x MSB/LSB groups) and the
off-chip 16 GB LPDDR4 DRAM.  SRAM-based baseline systems replace the eDRAM
components with SRAM of equal *area* (so roughly half the capacity).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memory.device import MemoryDevice
from repro.memory.dram import make_lpddr4
from repro.memory.edram import make_edram
from repro.memory.sram import make_sram, make_weight_sram
from repro.utils.units import KB, MB


@dataclass
class MemorySubsystem:
    """The on-chip/off-chip memory hierarchy used by the accelerator model."""

    weight_sram: MemoryDevice = field(default_factory=make_weight_sram)
    activation_buffer: MemoryDevice = field(default_factory=lambda: make_edram(256 * KB))
    kv_store: MemoryDevice = field(default_factory=make_edram)
    dram: MemoryDevice = field(default_factory=make_lpddr4)

    @property
    def kv_is_edram(self) -> bool:
        return self.kv_store.needs_refresh

    @property
    def onchip_capacity_bytes(self) -> int:
        return (self.weight_sram.capacity_bytes + self.activation_buffer.capacity_bytes
                + self.kv_store.capacity_bytes)

    @property
    def onchip_area_mm2(self) -> float:
        return self.weight_sram.area_mm2 + self.activation_buffer.area_mm2 + self.kv_store.area_mm2

    @property
    def onchip_leakage_w(self) -> float:
        return (self.weight_sram.leakage_power_w + self.activation_buffer.leakage_power_w
                + self.kv_store.leakage_power_w)

    @classmethod
    def kelle(cls, kv_capacity_bytes: int = 4 * MB) -> "MemorySubsystem":
        """The Kelle configuration: eDRAM KV cache and activation buffer."""
        return cls(
            weight_sram=make_weight_sram(2 * MB),
            activation_buffer=make_edram(256 * KB, name="ActeDRAM-256KB"),
            kv_store=make_edram(kv_capacity_bytes),
            dram=make_lpddr4(),
        )

    @classmethod
    def sram_baseline(cls, kv_capacity_bytes: int = 2 * MB,
                      weight_capacity_bytes: int = 2 * MB) -> "MemorySubsystem":
        """An all-SRAM on-chip configuration of comparable die area.

        SRAM has roughly half the density of 3T-eDRAM (Table 1), so an
        area-matched SRAM system holds about half the KV capacity.
        """
        return cls(
            weight_sram=make_weight_sram(weight_capacity_bytes),
            activation_buffer=make_sram(256 * KB, name="ActSRAM-256KB"),
            kv_store=make_sram(kv_capacity_bytes),
            dram=make_lpddr4(),
        )

    def with_kv_bandwidth(self, bandwidth_bytes_per_s: float) -> "MemorySubsystem":
        """Copy with a different KV-store bandwidth (Section 8.3.7 sensitivity study)."""
        kv = self.kv_store
        new_kv = MemoryDevice(
            name=kv.name,
            capacity_bytes=kv.capacity_bytes,
            area_mm2=kv.area_mm2,
            access_latency_s=kv.access_latency_s,
            access_energy_per_byte_j=kv.access_energy_per_byte_j,
            leakage_power_w=kv.leakage_power_w,
            bandwidth_bytes_per_s=bandwidth_bytes_per_s,
            refresh_energy_per_full_refresh_j=kv.refresh_energy_per_full_refresh_j,
            retention_time_s=kv.retention_time_s,
        )
        return MemorySubsystem(
            weight_sram=self.weight_sram,
            activation_buffer=self.activation_buffer,
            kv_store=new_kv,
            dram=self.dram,
        )
