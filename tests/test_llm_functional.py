"""Tests for the numerical primitives in repro.llm.functional."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.llm.functional import (
    apply_rope,
    causal_mask,
    cross_entropy,
    gelu,
    layer_norm,
    log_softmax,
    rms_norm,
    rope_frequencies,
    sigmoid,
    silu,
    softmax,
)


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        x = rng.standard_normal((8, 16))
        np.testing.assert_allclose(softmax(x).sum(axis=-1), 1.0, rtol=1e-5)

    def test_stability_with_large_inputs(self):
        x = np.array([1e4, -1e4, 0.0])
        out = softmax(x)
        assert np.all(np.isfinite(out))
        assert out[0] == pytest.approx(1.0)

    def test_log_softmax_consistency(self, rng):
        x = rng.standard_normal((4, 10))
        np.testing.assert_allclose(np.exp(log_softmax(x)), softmax(x), atol=1e-5)


class TestActivations:
    def test_sigmoid_range_and_symmetry(self, rng):
        x = rng.standard_normal(100) * 10
        s = sigmoid(x)
        assert np.all((s >= 0) & (s <= 1))
        np.testing.assert_allclose(sigmoid(-x), 1 - s, atol=1e-6)

    def test_silu_and_gelu_near_identity_for_large_positive(self):
        x = np.array([10.0, 20.0])
        np.testing.assert_allclose(silu(x), x, rtol=1e-3)
        np.testing.assert_allclose(gelu(x), x, rtol=1e-3)

    def test_silu_and_gelu_vanish_for_large_negative(self):
        x = np.array([-20.0])
        assert abs(float(silu(x)[0])) < 1e-3
        assert abs(float(gelu(x)[0])) < 1e-3


class TestNorms:
    def test_rms_norm_unit_scale(self, rng):
        x = rng.standard_normal((6, 32)).astype(np.float32) * 5
        out = rms_norm(x, np.ones(32, dtype=np.float32))
        rms = np.sqrt(np.mean(out**2, axis=-1))
        np.testing.assert_allclose(rms, 1.0, rtol=1e-3)

    def test_layer_norm_zero_mean_unit_variance(self, rng):
        x = rng.standard_normal((6, 32)).astype(np.float32) * 3 + 7
        out = layer_norm(x, np.ones(32, dtype=np.float32), np.zeros(32, dtype=np.float32))
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-4)
        np.testing.assert_allclose(out.var(axis=-1), 1.0, rtol=1e-2)


class TestRope:
    def test_rotation_preserves_norm(self, rng):
        cos, sin = rope_frequencies(16, 64)
        x = rng.standard_normal((4, 10, 16)).astype(np.float32)
        rotated = apply_rope(x, np.arange(10), cos, sin)
        np.testing.assert_allclose(np.linalg.norm(rotated, axis=-1),
                                   np.linalg.norm(x, axis=-1), rtol=1e-4)

    def test_position_zero_is_identity(self, rng):
        cos, sin = rope_frequencies(8, 16)
        x = rng.standard_normal((2, 1, 8)).astype(np.float32)
        np.testing.assert_allclose(apply_rope(x, np.array([0]), cos, sin), x, atol=1e-6)

    def test_relative_rotation_property(self, rng):
        """The inner product of rotated q/k depends only on relative position."""
        cos, sin = rope_frequencies(16, 128)
        q = rng.standard_normal(16).astype(np.float32)
        k = rng.standard_normal(16).astype(np.float32)

        def score(pos_q, pos_k):
            qr = apply_rope(q[None, :], np.array([pos_q]), cos, sin)[0]
            kr = apply_rope(k[None, :], np.array([pos_k]), cos, sin)[0]
            return float(qr @ kr)

        assert score(10, 7) == pytest.approx(score(50, 47), rel=1e-3, abs=1e-3)

    def test_odd_head_dim_rejected(self):
        with pytest.raises(ValueError):
            rope_frequencies(7, 16)


class TestCrossEntropyAndMask:
    def test_cross_entropy_of_perfect_prediction_is_zero(self):
        logits = np.full((1, 4, 8), -100.0)
        targets = np.array([[1, 2, 3, 0]])
        for t_index, target in enumerate(targets[0]):
            logits[0, t_index, target] = 100.0
        assert cross_entropy(logits, targets) == pytest.approx(0.0, abs=1e-4)

    def test_cross_entropy_of_uniform_prediction(self):
        logits = np.zeros((2, 3, 10))
        targets = np.zeros((2, 3), dtype=int)
        assert cross_entropy(logits, targets) == pytest.approx(np.log(10), rel=1e-5)

    def test_causal_mask_shape_and_values(self):
        mask = causal_mask(4)
        assert mask.shape == (4, 4)
        assert np.all(mask[np.tril_indices(4)] == 0)
        assert np.all(np.isneginf(mask[np.triu_indices(4, k=1)]))


class TestFunctionalProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=2, max_value=12))
    def test_softmax_invariant_to_constant_shift(self, seed, width):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(width)
        np.testing.assert_allclose(softmax(x), softmax(x + 123.4), atol=1e-5)
