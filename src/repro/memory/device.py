"""Generic analytical memory-device model.

Each device is characterised by capacity, area, access latency, per-byte
access energy, leakage power and (optionally) sustained bandwidth.  Devices
are deliberately simple: the accelerator model composes them into a memory
subsystem and derives traffic-dependent latency and energy from these
parameters, exactly as the paper's evaluation methodology does with
Destiny/CACTI characterisation numbers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace


class AccessKind(str, enum.Enum):
    """Read/write distinction, kept for traffic accounting symmetry."""

    READ = "read"
    WRITE = "write"


@dataclass(frozen=True)
class MemoryDevice:
    """An analytical memory device.

    Parameters
    ----------
    name:
        Human readable identifier, e.g. ``"eDRAM-4MB"``.
    capacity_bytes:
        Usable storage capacity in bytes.
    area_mm2:
        Silicon area of the array plus periphery.
    access_latency_s:
        Random access latency for one access.
    access_energy_per_byte_j:
        Dynamic energy per byte transferred.
    leakage_power_w:
        Static power dissipated whenever the device is powered.
    bandwidth_bytes_per_s:
        Sustained streaming bandwidth.
    refresh_energy_per_full_refresh_j:
        Energy to refresh the whole array once (0 for SRAM/DRAM-as-backing
        because DRAM refresh is folded into its background power here).
    retention_time_s:
        Worst-case cell retention time (0 if the device needs no refresh).
    """

    name: str
    capacity_bytes: int
    area_mm2: float
    access_latency_s: float
    access_energy_per_byte_j: float
    leakage_power_w: float
    bandwidth_bytes_per_s: float
    refresh_energy_per_full_refresh_j: float = 0.0
    retention_time_s: float = 0.0

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError("bandwidth_bytes_per_s must be positive")
        if self.access_energy_per_byte_j < 0 or self.leakage_power_w < 0:
            raise ValueError("energy/power parameters must be non-negative")

    @property
    def needs_refresh(self) -> bool:
        """Whether the device loses data without periodic refresh."""
        return self.retention_time_s > 0

    def transfer_time(self, num_bytes: float) -> float:
        """Time to stream ``num_bytes`` through the device interface."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        if num_bytes == 0:
            return 0.0
        return self.access_latency_s + num_bytes / self.bandwidth_bytes_per_s

    def access_energy(self, num_bytes: float, kind: AccessKind = AccessKind.READ) -> float:
        """Dynamic energy to transfer ``num_bytes`` (reads and writes cost alike)."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        del kind  # symmetric read/write energy in this model
        return num_bytes * self.access_energy_per_byte_j

    def leakage_energy(self, duration_s: float) -> float:
        """Static energy dissipated over ``duration_s`` seconds."""
        if duration_s < 0:
            raise ValueError("duration_s must be non-negative")
        return self.leakage_power_w * duration_s

    def refresh_energy(self, duration_s: float, refresh_interval_s: float,
                       fraction_refreshed: float = 1.0) -> float:
        """Refresh energy over ``duration_s`` at a given refresh interval.

        ``fraction_refreshed`` scales the cost when only part of the array
        holds live data (the Kelle eDRAM controller only refreshes occupied
        rows).
        """
        if not self.needs_refresh:
            return 0.0
        if refresh_interval_s <= 0:
            raise ValueError("refresh_interval_s must be positive")
        if not 0.0 <= fraction_refreshed <= 1.0:
            raise ValueError("fraction_refreshed must lie in [0, 1]")
        refreshes = duration_s / refresh_interval_s
        return refreshes * self.refresh_energy_per_full_refresh_j * fraction_refreshed

    def scaled(self, capacity_bytes: int, name: str | None = None) -> "MemoryDevice":
        """Return a copy scaled to a different capacity.

        Area, leakage and refresh energy scale linearly with capacity; access
        latency and per-byte energy scale with the square root of the ratio,
        a standard first-order SRAM/eDRAM scaling rule that matches the 29% /
        26% power / area increase the paper reports when growing SRAM from
        4 MB to 8 MB reasonably well.
        """
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        ratio = capacity_bytes / self.capacity_bytes
        sqrt_ratio = ratio**0.5
        return replace(
            self,
            name=name or f"{self.name.split('-')[0]}-{capacity_bytes // (1024 * 1024)}MB",
            capacity_bytes=capacity_bytes,
            area_mm2=self.area_mm2 * ratio,
            access_latency_s=self.access_latency_s * sqrt_ratio,
            access_energy_per_byte_j=self.access_energy_per_byte_j * sqrt_ratio,
            leakage_power_w=self.leakage_power_w * ratio,
            refresh_energy_per_full_refresh_j=self.refresh_energy_per_full_refresh_j * ratio,
        )
