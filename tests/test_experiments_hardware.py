"""Shape tests for the hardware-side experiment modules (fast, no training)."""

from __future__ import annotations

import pytest

import repro.experiments as E


class TestTable1:
    def test_rows_and_ordering(self):
        table = E.table1_devices.run()
        assert len(table) == 2
        sram, edram = table.rows
        assert sram["device"] == "SRAM" and edram["device"] == "eDRAM"
        assert edram["area_mm2"] < sram["area_mm2"]
        assert edram["access_energy_pj_per_byte"] < sram["access_energy_pj_per_byte"]
        assert edram["retention_time_us"] == pytest.approx(45.0)


class TestFig3:
    def test_latency_panel(self):
        table = E.fig3_motivation.run_latency(decode_lengths=(1024, 4096))
        assert all(row["speedup_8mb"] >= 1.0 for row in table.rows)

    def test_area_panel(self):
        table = E.fig3_motivation.run_area()
        by_name = {row["system"]: row for row in table.rows}
        assert by_name["edram-8mb"]["onchip_total_mm2"] < by_name["sram-8mb"]["onchip_total_mm2"]

    def test_energy_breakdown_panel(self):
        table = E.fig3_motivation.run_energy_breakdown(model_names=("llama2-7b",),
                                                       decode_lengths=(1024, 8192))
        for row in table.rows:
            assert row["refresh_frac"] > 0.2  # unoptimised refresh dominates
            total = row["refresh_frac"] + row["dram_frac"] + row["buffer_frac"] + row["compute_frac"]
            assert total <= 1.01


class TestFig4:
    def test_failure_rate_monotone(self):
        table = E.fig4_retention.run()
        rates = table.column("failure_rate")
        intervals = table.column("refresh_interval_us")
        assert all(a <= b for a, b in zip(rates, rates[1:]))
        assert intervals == sorted(intervals)
        markers = [row for row in table.rows if row["is_paper_marker"]]
        assert len(markers) == 4


class TestFig13:
    @pytest.fixture(scope="class")
    def table(self):
        return E.fig13_end2end.run(model_names=("llama2-7b",), datasets=("lambada", "pg19"))

    def test_normalisation(self, table):
        base_rows = [r for r in table.rows if r["system"] == "original+sram"]
        assert all(r["speedup"] == pytest.approx(1.0) for r in base_rows)

    def test_kelle_wins_everywhere(self, table):
        for row in table.rows:
            if row["system"] == "kelle+edram":
                assert row["speedup"] > 1.2
                assert row["energy_efficiency"] > 1.1

    def test_average_improvements(self, table):
        speedup, efficiency = E.fig13_end2end.average_improvements(table)
        assert speedup > 1.5
        assert efficiency > 1.2

    def test_energy_breakdown_pie(self):
        pie = E.fig13_end2end.run_energy_breakdown()
        fractions = {row["component"]: row["fraction_of_onchip"] for row in pie.rows}
        assert sum(fractions.values()) == pytest.approx(1.0, abs=1e-6)
        assert fractions["rsa"] > 0.01


class TestFig14:
    def test_kelle_best_energy_efficiency(self):
        table = E.fig14_accelerators.run(model_names=("llama2-7b",), datasets=("pg19",))
        rows = {row["accelerator"]: row for row in table.rows}
        assert rows["jetson-orin"]["energy_efficiency"] == pytest.approx(1.0)
        best = max(table.rows, key=lambda r: r["energy_efficiency"])
        assert best["accelerator"] == "kelle+edram"
        assert rows["kelle+edram"]["speedup"] > 1.0


class TestBudgetAndBatchSweeps:
    def test_table7_efficiency_decreases_with_budget(self):
        table = E.table7_budget_energy.run(model_names=("llama2-7b",), budgets=(2048, 5250, 8750))
        values = table.column("energy_efficiency")
        assert values[0] > values[1] > values[2]
        assert values[-1] > 1.0  # even the no-eviction budget keeps a gain

    def test_table9_gain_shrinks_with_batch(self):
        table = E.table9_batch.run(batch_sizes=(16, 1))
        kelle = {row["batch_size"]: row["energy_efficiency"]
                 for row in table.rows if row["system"] == "kelle+edram"}
        assert kelle[16] > kelle[1] > 1.0

    def test_table8_efficiency_drops_with_shorter_retention(self):
        table = E.table8_retention.run(datasets=("pg19",))
        values = table.column("energy_efficiency")
        assert values == sorted(values, reverse=True)
        assert values[-1] > 1.0


class TestFig15And16:
    def test_refresh_strategy_ordering(self):
        table = E.fig15_ablation.run_refresh_strategies()
        eff = {row["strategy"]: row["energy_efficiency"] for row in table.rows}
        assert eff["org"] == pytest.approx(1.0)
        assert eff["uni"] > eff["org"]
        assert eff["2d"] >= eff["uni"]
        assert eff["2k"] >= eff["2d"]

    def test_recomputation_helps(self):
        table = E.fig15_ablation.run_recomputation(model_names=("llama2-7b",))
        with_rows = [r for r in table.rows if r["recomputation"] == "with"]
        assert all(r["relative_efficiency"] >= 1.0 for r in with_rows)

    def test_roofline_over_recomputation_is_compute_bound(self):
        table = E.fig16_roofline_longseq.run_roofline()
        by_setting = {row["setting"]: row for row in table.rows}
        assert not by_setting["no-recomp"]["compute_bound"]
        assert by_setting["recomp-0.6"]["compute_bound"]
        assert by_setting["recomp-0.15"]["operational_intensity"] > \
            by_setting["no-recomp"]["operational_intensity"]

    def test_long_sequence_panel(self):
        table = E.fig16_roofline_longseq.run_long_sequences()
        assert len(table) == 12
        for row in table.rows:
            assert row["energy_efficiency"] > 1.0
            assert 0 <= row["prefill_energy_frac"] <= 1
        # At the same (long) input length, adding decode work makes the workload
        # more memory-intensive and increases Kelle's advantage (Section 8.3.5).
        prefill_heavy = [r for r in table.rows if r["context_len"] == 16384 and r["decode_len"] == 128]
        decode_heavy = [r for r in table.rows if r["context_len"] == 16384 and r["decode_len"] == 2048]
        assert decode_heavy[0]["energy_efficiency"] > prefill_heavy[0]["energy_efficiency"]
