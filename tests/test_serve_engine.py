"""ServingEngine tests: continuous-batching admission and per-request accounting.

The headline acceptance criterion: a >=8-request mixed-arrival trace must
produce per-request latency/energy totals that match the sum of the
equivalent single-request :meth:`EdgeSystem.simulate` calls within 5%.
"""

from __future__ import annotations

import pytest

from repro import Request, ServingEngine, resolve, simulate
from repro.serve import poisson_requests

#: A mixed-arrival, mixed-length trace of 9 requests (arrival s, prompt, decode).
MIXED_TRACE = [
    Request("a", 0.0, 128, 512),
    Request("b", 0.5, 512, 2048),
    Request("c", 1.0, 1024, 512),
    Request("d", 5.0, 512, 1024),
    Request("e", 5.0, 128, 128),
    Request("f", 30.0, 2048, 256),
    Request("g", 31.0, 512, 512),
    Request("h", 200.0, 128, 2048),
    Request("i", 201.0, 256, 256),
]


@pytest.fixture(scope="module")
def engine() -> ServingEngine:
    return ServingEngine("kelle+edram:kv_budget=1024", "llama2-7b", max_concurrency=3)


@pytest.fixture(scope="module")
def report(engine):
    return engine.run(MIXED_TRACE)


class TestAccountingMatchesSingleRequestSims:
    def test_per_request_latency_within_5_percent(self, engine, report):
        assert report.n_requests >= 8
        for result in report.results:
            reference = engine.system.simulate(engine.model, result.request.trace())
            assert result.service_latency_s == pytest.approx(reference.total_latency_s, rel=0.05)
            assert result.prefill_latency_s == pytest.approx(reference.prefill.latency_s, rel=0.05)
            assert result.decode_latency_s == pytest.approx(reference.decode.latency_s, rel=0.05)

    def test_per_request_energy_within_5_percent(self, engine, report):
        for result in report.results:
            reference = engine.system.simulate(engine.model, result.request.trace())
            assert result.energy_j == pytest.approx(reference.total_energy_j, rel=0.05)

    def test_totals_within_5_percent(self, engine, report):
        ref_latency = ref_energy = 0.0
        for request in MIXED_TRACE:
            reference = engine.system.simulate(engine.model, request.trace())
            ref_latency += reference.total_latency_s
            ref_energy += reference.total_energy_j
        assert sum(r.service_latency_s for r in report.results) == pytest.approx(ref_latency,
                                                                                 rel=0.05)
        assert report.total_energy_j == pytest.approx(ref_energy, rel=0.05)


class TestAdmission:
    def test_respects_arrival_times_and_capacity(self, report):
        for result in report.results:
            assert result.admitted_at_s >= result.request.arrival_time_s
            assert result.finished_at_s > result.admitted_at_s
        assert report.peak_concurrency <= 3

    def test_single_slot_serialises(self):
        engine = ServingEngine("kelle+edram", "llama2-7b", max_concurrency=1)
        report = engine.run(MIXED_TRACE[:4])
        ordered = sorted(report.results, key=lambda r: r.admitted_at_s)
        for earlier, later in zip(ordered, ordered[1:]):
            assert later.admitted_at_s >= earlier.finished_at_s - 1e-9
        assert report.peak_concurrency == 1

    def test_unbounded_capacity_has_no_queueing(self):
        engine = ServingEngine("kelle+edram", "llama2-7b", max_concurrency=len(MIXED_TRACE))
        report = engine.run(MIXED_TRACE)
        for result in report.results:
            assert result.queue_delay_s == pytest.approx(0.0, abs=1e-12)

    def test_tighter_capacity_increases_queueing(self):
        tight = ServingEngine("kelle+edram", "llama2-7b", max_concurrency=1).run(MIXED_TRACE)
        loose = ServingEngine("kelle+edram", "llama2-7b", max_concurrency=8).run(MIXED_TRACE)
        assert tight.mean_queue_delay_s > loose.mean_queue_delay_s
        assert tight.makespan_s >= loose.makespan_s


class TestReport:
    def test_aggregates(self, report):
        assert report.total_tokens == sum(r.decode_len for r in MIXED_TRACE)
        assert report.throughput_tokens_per_s > 0
        assert report.makespan_s > 0
        assert report.latency_percentile_s(50) <= report.latency_percentile_s(95)
        assert report.energy.total == pytest.approx(report.total_energy_j)

    def test_summary_mentions_key_facts(self, report):
        text = report.summary()
        assert "9 requests" in text
        assert "kelle+edram" in text
        assert "llama2-7b" in text


class TestValidation:
    def test_empty_run_raises(self, engine):
        with pytest.raises(ValueError):
            engine.run([])

    def test_duplicate_request_ids_raise(self, engine):
        with pytest.raises(ValueError):
            engine.run([Request("x", 0.0, 128, 128), Request("x", 1.0, 128, 128)])

    def test_bad_request_fields_raise(self):
        with pytest.raises(ValueError):
            Request("x", -1.0, 128, 128)
        with pytest.raises(ValueError):
            Request("x", 0.0, 0, 128)
        with pytest.raises(ValueError):
            Request("x", 0.0, 128, 0)

    def test_bad_concurrency_raises(self):
        with pytest.raises(ValueError):
            ServingEngine(max_concurrency=0)


class TestHelpers:
    def test_poisson_requests_deterministic_and_bounded(self):
        first = poisson_requests(16, rate_rps=0.1, prompt_len=256, decode_len=512,
                                 length_jitter=0.5, seed=7)
        second = poisson_requests(16, rate_rps=0.1, prompt_len=256, decode_len=512,
                                  length_jitter=0.5, seed=7)
        assert first == second
        assert all(r.arrival_time_s >= 0 for r in first)
        arrivals = [r.arrival_time_s for r in first]
        assert arrivals == sorted(arrivals)
        for request in first:
            assert 128 <= request.prompt_len <= 384
            assert 256 <= request.decode_len <= 768

    def test_simulate_helper_matches_manual_composition(self):
        spec_result = simulate("original+sram", "llama2-7b", "lambada:batch=1")
        system = resolve("system", "original+sram")
        manual = system.simulate(resolve("model", "llama2-7b"),
                                 resolve("trace", "lambada:batch=1"))
        assert spec_result.total_latency_s == pytest.approx(manual.total_latency_s)
        assert spec_result.total_energy_j == pytest.approx(manual.total_energy_j)


class TestFunctionalServing:
    @pytest.fixture(scope="class")
    def lm(self):
        from repro.llm.config import tiny_config
        from repro.llm.model import DecoderLM

        return DecoderLM(tiny_config("serve-tiny", n_layers=2, d_model=32, n_heads=4,
                                     d_ff=64, vocab_size=32, max_seq_len=256), seed=7)

    def test_functional_run_decodes_every_request(self, lm):
        engine = ServingEngine(max_concurrency=3)
        requests = poisson_requests(7, rate_rps=2.0, prompt_len=20, decode_len=10,
                                    length_jitter=0.4, seed=2)
        report = engine.run_functional(lm, requests,
                                       cache="h2o:budget=16,sink_tokens=2,recent_window=4")
        assert report.n_requests == 7
        for result in report.results:
            assert len(result.prompt_tokens) == result.request.prompt_len
            assert result.tokens_generated == result.request.decode_len
            assert all(0 <= t < lm.config.vocab_size for t in result.generated_tokens)
            assert result.admitted_step <= result.finished_step
        assert report.peak_batch <= 3
        assert report.total_decode_tokens == sum(r.decode_len for r in requests)
        assert report.decode_tokens_per_s > 0
        assert "requests" in report.summary()

    def test_functional_run_is_deterministic(self, lm):
        engine = ServingEngine(max_concurrency=2)
        requests = poisson_requests(4, rate_rps=1.0, prompt_len=16, decode_len=6, seed=3)
        first = engine.run_functional(lm, requests, seed=5)
        second = engine.run_functional(lm, requests, seed=5)
        assert [r.generated_tokens for r in first.results] == [
            r.generated_tokens for r in second.results]

    def test_functional_run_matches_unbatched_generation(self, lm):
        """With concurrency 1 the engine reduces to plain greedy generation."""
        from repro.llm.generation import generate

        engine = ServingEngine(max_concurrency=1)
        requests = poisson_requests(3, rate_rps=1.0, prompt_len=18, decode_len=8, seed=4)
        report = engine.run_functional(lm, requests, seed=9)
        for result in report.results:
            reference = generate(lm, result.prompt_tokens, result.request.decode_len)
            assert result.generated_tokens == reference.generated_tokens

    def test_functional_run_validates_inputs(self, lm):
        engine = ServingEngine(max_concurrency=2)
        with pytest.raises(ValueError):
            engine.run_functional(lm, [])
        with pytest.raises(ValueError):
            engine.run_functional(lm, [Request("big", 0.0, 400, 100)])
        with pytest.raises(ValueError):
            engine.run_functional(lm, [Request("x", 0.0, 8, 4)], token_budget=0)


#: One spec per registered cache kind, sized for the tiny serving model.
#: Prefix sharing must be output-transparent for every one of them: caches
#: with chunked-prefill support (full, paged) actually reuse prefixes, the
#: rest silently run unshared — either way the tokens must be identical to
#: the isolated per-request-cache path.
SERVE_CACHE_SPECS = [
    "full",
    "paged:page_tokens=8",
    "streaming_llm:budget=16,sink_tokens=2",
    "h2o:budget=16,sink_tokens=2,recent_window=4",
    "random:budget=16,sink_tokens=2,recent_window=4",
    "kivi:bits=8",
    "quarot:bits=8",
    "kelle:budget=16,sink_tokens=2,recent_window=4,refresh=none",
]


class TestPrefixSharingServing:
    @pytest.fixture(scope="class")
    def lm(self):
        from repro.llm.config import tiny_config
        from repro.llm.model import DecoderLM

        return DecoderLM(tiny_config("serve-prefix-tiny", n_layers=2, d_model=32,
                                     n_heads=4, d_ff=64, vocab_size=48,
                                     max_seq_len=512), seed=7)

    @pytest.fixture(scope="class")
    def shared_requests(self):
        from repro.workloads import shared_prefix_requests

        return shared_prefix_requests(n_groups=2, requests_per_group=4,
                                      prefix_len=40, suffix_len=6, decode_len=8,
                                      vocab_size=48, seed=1)

    def test_specs_cover_every_registered_cache(self):
        from repro.registry import known

        covered = {spec.split(":", 1)[0] for spec in SERVE_CACHE_SPECS}
        assert covered == set(known("cache"))

    @pytest.mark.parametrize("spec", SERVE_CACHE_SPECS)
    def test_shared_serving_token_identical_to_isolated(self, lm, shared_requests, spec):
        engine = ServingEngine(max_concurrency=3)
        isolated = engine.run_functional(lm, shared_requests, cache=spec)
        shared = engine.run_functional(lm, shared_requests, cache=spec,
                                       prefix_cache=True)
        assert [r.generated_tokens for r in shared.results] == [
            r.generated_tokens for r in isolated.results]

    @pytest.mark.parametrize("spec", ["full", "paged:page_tokens=8"])
    def test_chunk_capable_caches_actually_reuse(self, lm, shared_requests, spec):
        engine = ServingEngine(max_concurrency=3)
        report = engine.run_functional(lm, shared_requests, cache=spec,
                                       prefix_cache=True)
        assert report.reused_prefix_tokens > 0
        reusers = [r for r in report.results if r.reused_prefix_tokens > 0]
        assert len(reusers) >= len(shared_requests) - 2  # one cold miss per group
        for result in reusers:
            assert result.reused_prefix_tokens < result.request.prompt_len

    def test_non_chunkable_caches_report_no_reuse(self, lm, shared_requests):
        engine = ServingEngine(max_concurrency=3)
        report = engine.run_functional(
            lm, shared_requests, cache="h2o:budget=16,sink_tokens=2,recent_window=4",
            prefix_cache=True)
        assert report.reused_prefix_tokens == 0

    def test_chunked_prefill_scheduler_token_identical(self, lm, shared_requests):
        engine = ServingEngine(max_concurrency=3)
        isolated = engine.run_functional(lm, shared_requests, cache="full")
        for budget in (4, 16, 64):
            chunked = engine.run_functional(lm, shared_requests,
                                            cache="paged:page_tokens=8",
                                            prefix_cache=True, token_budget=budget)
            assert [r.generated_tokens for r in chunked.results] == [
                r.generated_tokens for r in isolated.results], f"budget={budget}"

    def test_chunked_prefill_bounds_prefill_work_per_step(self, lm):
        # One long-prompt request arriving into a running batch: with a small
        # token budget its prefill must be spread over many steps.
        requests = [Request("a-short", 0.0, 8, 40),
                    Request("b-long", 0.0, 200, 8)]
        engine = ServingEngine(max_concurrency=2)
        budgeted = engine.run_functional(lm, requests, cache="paged:page_tokens=8",
                                         token_budget=16)
        whole = engine.run_functional(lm, requests, cache="paged:page_tokens=8")
        long_budgeted = next(r for r in budgeted.results
                             if r.request.request_id == "b-long")
        long_whole = next(r for r in whole.results if r.request.request_id == "b-long")
        # Whole-prompt mode prefills the 200-token prompt in its admission
        # step; the budgeted run spreads it over >= 200/16 steps while the
        # short request keeps decoding, so the long request finishes later
        # in *step* terms without stalling the batch.
        assert long_budgeted.finished_step > long_whole.finished_step
        assert [r.generated_tokens for r in budgeted.results] == [
            r.generated_tokens for r in whole.results]

    def test_multi_turn_requests_reuse_history(self, lm):
        from repro.workloads import multi_turn_requests

        requests = multi_turn_requests(n_conversations=2, n_turns=3, system_len=16,
                                       user_len=6, decode_len=6, vocab_size=48,
                                       seed=3)
        engine = ServingEngine(max_concurrency=4)
        isolated = engine.run_functional(lm, requests, cache="full")
        shared = engine.run_functional(lm, requests, cache="paged:page_tokens=8",
                                       prefix_cache=True)
        assert [r.generated_tokens for r in shared.results] == [
            r.generated_tokens for r in isolated.results]
        assert shared.reused_prefix_tokens > 0

    def test_pool_accounting_balances_through_a_run(self, lm, shared_requests):
        factory = resolve("cache", "paged:page_tokens=8")
        engine = ServingEngine(max_concurrency=3)
        engine.run_functional(lm, shared_requests, cache=factory,
                              prefix_cache=True, token_budget=24)
        factory.check_accounting()
        assert factory.total_pages == factory.referenced_pages + factory.free_pages
        # The run released every sequence and cleared the radix index, so
        # every page must be back on the free list.
        assert factory.referenced_pages == 0
        assert factory.free_pages == factory.total_pages

    def test_radix_budget_limits_index_growth(self, lm, shared_requests, monkeypatch):
        from repro.serve.radix import RadixPrefixIndex

        # Observe the index budget as the engine drives it: stored tokens
        # must never exceed the budget after any insert's eviction pass.
        observed: list[int] = []
        original_insert = RadixPrefixIndex.insert

        def spying_insert(self, tokens, caches):
            stored = original_insert(self, tokens, caches)
            assert self.max_tokens == 50
            observed.append(self.stored_tokens)
            return stored

        monkeypatch.setattr(RadixPrefixIndex, "insert", spying_insert)
        factory = resolve("cache", "paged:page_tokens=8")
        engine = ServingEngine(max_concurrency=3)
        isolated = engine.run_functional(lm, shared_requests, cache="full")
        report = engine.run_functional(lm, shared_requests, cache=factory,
                                       prefix_cache=True, radix_max_tokens=50)
        factory.check_accounting()
        assert report.n_requests == len(shared_requests)
        assert observed and all(stored <= 50 for stored in observed)
        # Eviction under a tight budget must never corrupt outputs.
        assert [r.generated_tokens for r in report.results] == [
            r.generated_tokens for r in isolated.results]

    def test_ttft_and_step_latency_metrics(self, lm, shared_requests):
        engine = ServingEngine(max_concurrency=3)
        report = engine.run_functional(lm, shared_requests,
                                       cache="paged:page_tokens=8",
                                       prefix_cache=True)
        assert len(report.step_latencies_s) > 0
        assert all(r.ttft_s > 0 for r in report.results)
        assert report.mean_ttft_s > 0
        assert report.ttft_percentile_s(50) <= report.ttft_percentile_s(99)
        assert (report.step_latency_percentile_s(50)
                <= report.step_latency_percentile_s(99))
        text = report.summary()
        assert "TTFT" in text
        assert "p99" in text
        assert "step latency" in text
        assert "prefix reuse" in text

    def test_summary_percentiles_match_public_methods(self, lm, shared_requests):
        engine = ServingEngine(max_concurrency=3)
        report = engine.run_functional(lm, shared_requests, cache="full")
        # summary() derives every percentile from one sorted array; the
        # public per-percentile methods must agree with what it prints.
        text = report.summary()
        assert f"p99 {report.step_latency_percentile_s(99) * 1e3:8.2f} ms" in text
        assert f"p50 {report.ttft_percentile_s(50) * 1e3:8.2f} ms" in text

    def test_request_prompt_tokens_validation(self):
        with pytest.raises(ValueError):
            Request("x", 0.0, 4, 2, prompt_tokens=(1, 2, 3))
        request = Request("x", 0.0, 3, 2, prompt_tokens=[1, 2, 3])
        assert request.prompt_tokens == (1, 2, 3)

    def test_pinned_prompts_are_served_verbatim(self, lm):
        prompt = tuple(range(1, 13))
        request = Request("pinned", 0.0, 12, 4, prompt_tokens=prompt)
        engine = ServingEngine(max_concurrency=1)
        report = engine.run_functional(lm, [request])
        assert tuple(report.results[0].prompt_tokens) == prompt


class TestSpeculativeServing:
    """Engine-level speculative decoding: token identity, budget integration,
    acceptance metrics and pool accounting after rollback."""

    @pytest.fixture(scope="class")
    def lm(self):
        from repro.llm.config import tiny_config
        from repro.llm.model import DecoderLM

        return DecoderLM(tiny_config("serve-spec-tiny", n_layers=2, d_model=32,
                                     n_heads=4, d_ff=64, vocab_size=48,
                                     max_seq_len=1024), seed=7)

    @pytest.fixture(scope="class")
    def repetitive(self):
        from repro.workloads import repetitive_requests

        return repetitive_requests(n_requests=6, template_len=12, n_repeats=4,
                                   decode_len=10, vocab_size=48, seed=2)

    @pytest.mark.parametrize("spec", ["full", "paged:page_tokens=8"])
    @pytest.mark.parametrize("drafter", ["ngram:k=4", "draft-model:model=tiny-llama2-7b,k=2"])
    def test_speculative_serving_token_identical(self, lm, repetitive, spec, drafter):
        if drafter.startswith("draft-model"):
            from repro.llm.speculate import DraftModelDrafter

            drafter = DraftModelDrafter(lm, k=2)  # matching vocab: the target itself
        engine = ServingEngine(max_concurrency=3)
        baseline = engine.run_functional(lm, repetitive, cache=spec)
        speculative = engine.run_functional(lm, repetitive, cache=spec, drafter=drafter)
        assert [r.generated_tokens for r in speculative.results] == [
            r.generated_tokens for r in baseline.results]
        assert speculative.spec_proposed_tokens > 0
        assert speculative.spec_accepted_tokens > 0

    def test_speculation_composes_with_prefix_cache_and_budget(self, lm, repetitive):
        engine = ServingEngine(max_concurrency=3)
        baseline = engine.run_functional(lm, repetitive, cache="full")
        for budget in (None, 8, 32):
            report = engine.run_functional(lm, repetitive, cache="paged:page_tokens=8",
                                           prefix_cache=True, token_budget=budget,
                                           drafter="ngram:k=4")
            assert [r.generated_tokens for r in report.results] == [
                r.generated_tokens for r in baseline.results], f"budget={budget}"

    def test_pool_accounting_after_speculative_rollback(self, lm, repetitive):
        from repro.llm.speculate import Drafter, DrafterSession

        class _WrongSession(DrafterSession):
            def propose(self, context, max_tokens=None):
                budget = 3 if max_tokens is None else min(3, max_tokens)
                # Propose the context cycled forward by one: mostly wrong,
                # guaranteeing rejections (and truncate rollbacks) every step.
                return [(int(t) + 1) % 48 for t in context[-budget:]] if budget > 0 else []

        class _WrongDrafter(Drafter):
            k = 3

            def session(self):
                return _WrongSession()

        factory = resolve("cache", "paged:page_tokens=8")
        engine = ServingEngine(max_concurrency=3)
        report = engine.run_functional(lm, repetitive, cache=factory,
                                       prefix_cache=True, token_budget=16,
                                       drafter=_WrongDrafter())
        # Speculation really rejected proposals (forcing truncate rollbacks)...
        assert report.spec_proposed_tokens > report.spec_accepted_tokens
        # ...the output stream survived token-identical...
        baseline = engine.run_functional(lm, repetitive, cache="full")
        assert [r.generated_tokens for r in report.results] == [
            r.generated_tokens for r in baseline.results]
        # ...and the page pool invariant survived every rollback.
        factory.check_accounting()
        assert factory.total_pages == factory.referenced_pages + factory.free_pages
        assert factory.referenced_pages == 0

    def test_acceptance_metrics_and_summary(self, lm, repetitive):
        engine = ServingEngine(max_concurrency=2)
        report = engine.run_functional(lm, repetitive, cache="full", drafter="ngram:k=4")
        assert report.drafter == "ngram:k=4"
        assert 0.0 < report.spec_acceptance_rate <= 1.0
        assert report.spec_accepted_tokens <= report.spec_proposed_tokens
        text = report.summary()
        assert "speculation" in text
        assert "accept rate" in text
        assert "speculative tok/s" in text

    def test_no_drafter_reports_no_speculation(self, lm, repetitive):
        engine = ServingEngine(max_concurrency=2)
        report = engine.run_functional(lm, repetitive, cache="full")
        assert report.drafter is None
        assert report.spec_proposed_tokens == 0
        assert "speculation" not in report.summary()

    def test_non_rollback_cache_falls_back(self, lm, repetitive):
        engine = ServingEngine(max_concurrency=2)
        spec = "h2o:budget=16,sink_tokens=2,recent_window=4"
        baseline = engine.run_functional(lm, repetitive, cache=spec)
        report = engine.run_functional(lm, repetitive, cache=spec, drafter="ngram:k=4")
        assert report.spec_proposed_tokens == 0
        # The fallback is silent in behaviour but observable in the report.
        assert report.drafter == "ngram:k=4 (disabled: cache lacks rollback)"
        assert "disabled" in report.summary()
        assert [r.generated_tokens for r in report.results] == [
            r.generated_tokens for r in baseline.results]

    def test_speculation_needs_fewer_steps(self, lm, repetitive):
        """The whole point: accepted proposals collapse decode steps."""
        engine = ServingEngine(max_concurrency=3)
        baseline = engine.run_functional(lm, repetitive, cache="full")
        speculative = engine.run_functional(lm, repetitive, cache="full",
                                            drafter="ngram:k=4")
        assert speculative.n_steps < baseline.n_steps

    def test_repetitive_requests_generator(self):
        from repro.workloads import repetitive_requests

        first = repetitive_requests(n_requests=5, template_len=8, n_repeats=3,
                                    decode_len=4, vocab_size=32, noise=0.1, seed=9)
        second = repetitive_requests(n_requests=5, template_len=8, n_repeats=3,
                                     decode_len=4, vocab_size=32, noise=0.1, seed=9)
        assert first == second
        for request in first:
            assert request.prompt_len == 24
            assert len(request.prompt_tokens) == 24
        arrivals = [r.arrival_time_s for r in first]
        assert arrivals == sorted(arrivals)
        # noise=0 repeats the template exactly
        clean = repetitive_requests(n_requests=2, template_len=6, n_repeats=4,
                                    decode_len=4, vocab_size=32, seed=1)
        tokens = clean[0].prompt_tokens
        assert tokens[:6] * 4 == tokens
        with pytest.raises(ValueError):
            repetitive_requests(n_requests=0, template_len=6, n_repeats=2,
                                decode_len=4, vocab_size=32)
        with pytest.raises(ValueError):
            repetitive_requests(n_requests=2, template_len=6, n_repeats=2,
                                decode_len=4, vocab_size=32, noise=1.5)
