"""Table 6: compatibility of Kelle with aggressive weight quantization.

The paper quantizes LLaMA2-7B with the QuaRot flow (4-bit weights, 8-bit
activations/KV) and shows Kelle's accuracy impact stays small.  The
reproduction compares the Kelle policy running on a tiny model with 8-bit
weights (the default Kelle accelerator precision) against the same model with
4-bit Hadamard-rotated weights, reporting perplexity and recall accuracy.
"""

from __future__ import annotations

import numpy as np

from repro.core.aerp import AERPConfig, aerp_cache_factory
from repro.eval.accuracy import multiple_choice_accuracy
from repro.eval.harness import EvalModel, get_eval_model
from repro.experiments.common import tiny_2drp_policy
from repro.eval.perplexity import perplexity_over_documents
from repro.llm.model import DecoderLM
from repro.quant.integer import fake_quantize
from repro.utils.tables import TableResult
from repro.workloads.tasks import make_multiple_choice_task

CONTEXT_LEN = 64
DECODE_LEN = 64
BUDGET = 48
N_ITEMS = 10

#: Parameter-name substrings whose tensors are weight matrices (quantized);
#: norm weights and biases stay in full precision, as in QuaRot.
_MATRIX_KEYS = ("wq", "wk", "wv", "wo", "w1", "w2", "w3", "embed.weight", "lm_head")


def quantize_model_weights(model: DecoderLM, bits: int) -> DecoderLM:
    """Return a copy of ``model`` with fake-quantized weight matrices."""
    quantized: dict[str, np.ndarray] = {}
    for name, array in model.params.items():
        if array.ndim == 2 and any(key in name for key in _MATRIX_KEYS):
            quantized[name] = fake_quantize(array, bits=bits, axis=-1).astype(np.float32)
        else:
            quantized[name] = array
    return model.copy_with_params(quantized)


def _evaluate(eval_model: EvalModel, model: DecoderLM, seed: int) -> tuple[float, float]:
    aerp = AERPConfig(budget=BUDGET, sink_tokens=4, recent_window=12)
    factory = aerp_cache_factory(aerp, injector=tiny_2drp_policy().make_injector(), seed=seed)
    documents = eval_model.sample_documents(2, CONTEXT_LEN + DECODE_LEN, seed=seed)
    ppl = perplexity_over_documents(model, documents, factory, prefill_len=CONTEXT_LEN)
    items = make_multiple_choice_task(eval_model.language, N_ITEMS, CONTEXT_LEN, seed=seed)
    accuracy = multiple_choice_accuracy(model, items, factory)
    return ppl, accuracy


def run(model_name: str = "tiny-llama2-7b", seed: int = 0) -> TableResult:
    """Kelle with 8-bit weights versus Kelle with 4-bit weights."""
    eval_model = get_eval_model(model_name)
    table = TableResult(
        title="Table 6: Kelle with weight quantization",
        columns=["setting", "weight_bits", "ppl", "accuracy"],
    )
    for setting, bits in (("kelle-w8a16", 8), ("kelle-w4a8", 4)):
        model = quantize_model_weights(eval_model.model, bits)
        ppl, accuracy = _evaluate(eval_model, model, seed)
        table.add_row(setting=setting, weight_bits=bits, ppl=ppl, accuracy=accuracy)
    return table
