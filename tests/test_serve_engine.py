"""ServingEngine tests: continuous-batching admission and per-request accounting.

The headline acceptance criterion: a >=8-request mixed-arrival trace must
produce per-request latency/energy totals that match the sum of the
equivalent single-request :meth:`EdgeSystem.simulate` calls within 5%.
"""

from __future__ import annotations

import pytest

from repro import Request, ServingEngine, resolve, simulate
from repro.serve import poisson_requests

#: A mixed-arrival, mixed-length trace of 9 requests (arrival s, prompt, decode).
MIXED_TRACE = [
    Request("a", 0.0, 128, 512),
    Request("b", 0.5, 512, 2048),
    Request("c", 1.0, 1024, 512),
    Request("d", 5.0, 512, 1024),
    Request("e", 5.0, 128, 128),
    Request("f", 30.0, 2048, 256),
    Request("g", 31.0, 512, 512),
    Request("h", 200.0, 128, 2048),
    Request("i", 201.0, 256, 256),
]


@pytest.fixture(scope="module")
def engine() -> ServingEngine:
    return ServingEngine("kelle+edram:kv_budget=1024", "llama2-7b", max_concurrency=3)


@pytest.fixture(scope="module")
def report(engine):
    return engine.run(MIXED_TRACE)


class TestAccountingMatchesSingleRequestSims:
    def test_per_request_latency_within_5_percent(self, engine, report):
        assert report.n_requests >= 8
        for result in report.results:
            reference = engine.system.simulate(engine.model, result.request.trace())
            assert result.service_latency_s == pytest.approx(reference.total_latency_s, rel=0.05)
            assert result.prefill_latency_s == pytest.approx(reference.prefill.latency_s, rel=0.05)
            assert result.decode_latency_s == pytest.approx(reference.decode.latency_s, rel=0.05)

    def test_per_request_energy_within_5_percent(self, engine, report):
        for result in report.results:
            reference = engine.system.simulate(engine.model, result.request.trace())
            assert result.energy_j == pytest.approx(reference.total_energy_j, rel=0.05)

    def test_totals_within_5_percent(self, engine, report):
        ref_latency = ref_energy = 0.0
        for request in MIXED_TRACE:
            reference = engine.system.simulate(engine.model, request.trace())
            ref_latency += reference.total_latency_s
            ref_energy += reference.total_energy_j
        assert sum(r.service_latency_s for r in report.results) == pytest.approx(ref_latency,
                                                                                 rel=0.05)
        assert report.total_energy_j == pytest.approx(ref_energy, rel=0.05)


class TestAdmission:
    def test_respects_arrival_times_and_capacity(self, report):
        for result in report.results:
            assert result.admitted_at_s >= result.request.arrival_time_s
            assert result.finished_at_s > result.admitted_at_s
        assert report.peak_concurrency <= 3

    def test_single_slot_serialises(self):
        engine = ServingEngine("kelle+edram", "llama2-7b", max_concurrency=1)
        report = engine.run(MIXED_TRACE[:4])
        ordered = sorted(report.results, key=lambda r: r.admitted_at_s)
        for earlier, later in zip(ordered, ordered[1:]):
            assert later.admitted_at_s >= earlier.finished_at_s - 1e-9
        assert report.peak_concurrency == 1

    def test_unbounded_capacity_has_no_queueing(self):
        engine = ServingEngine("kelle+edram", "llama2-7b", max_concurrency=len(MIXED_TRACE))
        report = engine.run(MIXED_TRACE)
        for result in report.results:
            assert result.queue_delay_s == pytest.approx(0.0, abs=1e-12)

    def test_tighter_capacity_increases_queueing(self):
        tight = ServingEngine("kelle+edram", "llama2-7b", max_concurrency=1).run(MIXED_TRACE)
        loose = ServingEngine("kelle+edram", "llama2-7b", max_concurrency=8).run(MIXED_TRACE)
        assert tight.mean_queue_delay_s > loose.mean_queue_delay_s
        assert tight.makespan_s >= loose.makespan_s


class TestReport:
    def test_aggregates(self, report):
        assert report.total_tokens == sum(r.decode_len for r in MIXED_TRACE)
        assert report.throughput_tokens_per_s > 0
        assert report.makespan_s > 0
        assert report.latency_percentile_s(50) <= report.latency_percentile_s(95)
        assert report.energy.total == pytest.approx(report.total_energy_j)

    def test_summary_mentions_key_facts(self, report):
        text = report.summary()
        assert "9 requests" in text
        assert "kelle+edram" in text
        assert "llama2-7b" in text


class TestValidation:
    def test_empty_run_raises(self, engine):
        with pytest.raises(ValueError):
            engine.run([])

    def test_duplicate_request_ids_raise(self, engine):
        with pytest.raises(ValueError):
            engine.run([Request("x", 0.0, 128, 128), Request("x", 1.0, 128, 128)])

    def test_bad_request_fields_raise(self):
        with pytest.raises(ValueError):
            Request("x", -1.0, 128, 128)
        with pytest.raises(ValueError):
            Request("x", 0.0, 0, 128)
        with pytest.raises(ValueError):
            Request("x", 0.0, 128, 0)

    def test_bad_concurrency_raises(self):
        with pytest.raises(ValueError):
            ServingEngine(max_concurrency=0)


class TestHelpers:
    def test_poisson_requests_deterministic_and_bounded(self):
        first = poisson_requests(16, rate_rps=0.1, prompt_len=256, decode_len=512,
                                 length_jitter=0.5, seed=7)
        second = poisson_requests(16, rate_rps=0.1, prompt_len=256, decode_len=512,
                                  length_jitter=0.5, seed=7)
        assert first == second
        assert all(r.arrival_time_s >= 0 for r in first)
        arrivals = [r.arrival_time_s for r in first]
        assert arrivals == sorted(arrivals)
        for request in first:
            assert 128 <= request.prompt_len <= 384
            assert 256 <= request.decode_len <= 768

    def test_simulate_helper_matches_manual_composition(self):
        spec_result = simulate("original+sram", "llama2-7b", "lambada:batch=1")
        system = resolve("system", "original+sram")
        manual = system.simulate(resolve("model", "llama2-7b"),
                                 resolve("trace", "lambada:batch=1"))
        assert spec_result.total_latency_s == pytest.approx(manual.total_latency_s)
        assert spec_result.total_energy_j == pytest.approx(manual.total_energy_j)


class TestFunctionalServing:
    @pytest.fixture(scope="class")
    def lm(self):
        from repro.llm.config import tiny_config
        from repro.llm.model import DecoderLM

        return DecoderLM(tiny_config("serve-tiny", n_layers=2, d_model=32, n_heads=4,
                                     d_ff=64, vocab_size=32, max_seq_len=256), seed=7)

    def test_functional_run_decodes_every_request(self, lm):
        engine = ServingEngine(max_concurrency=3)
        requests = poisson_requests(7, rate_rps=2.0, prompt_len=20, decode_len=10,
                                    length_jitter=0.4, seed=2)
        report = engine.run_functional(lm, requests,
                                       cache="h2o:budget=16,sink_tokens=2,recent_window=4")
        assert report.n_requests == 7
        for result in report.results:
            assert len(result.prompt_tokens) == result.request.prompt_len
            assert result.tokens_generated == result.request.decode_len
            assert all(0 <= t < lm.config.vocab_size for t in result.generated_tokens)
            assert result.admitted_step <= result.finished_step
        assert report.peak_batch <= 3
        assert report.total_decode_tokens == sum(r.decode_len for r in requests)
        assert report.decode_tokens_per_s > 0
        assert "requests" in report.summary()

    def test_functional_run_is_deterministic(self, lm):
        engine = ServingEngine(max_concurrency=2)
        requests = poisson_requests(4, rate_rps=1.0, prompt_len=16, decode_len=6, seed=3)
        first = engine.run_functional(lm, requests, seed=5)
        second = engine.run_functional(lm, requests, seed=5)
        assert [r.generated_tokens for r in first.results] == [
            r.generated_tokens for r in second.results]

    def test_functional_run_matches_unbatched_generation(self, lm):
        """With concurrency 1 the engine reduces to plain greedy generation."""
        from repro.llm.generation import generate

        engine = ServingEngine(max_concurrency=1)
        requests = poisson_requests(3, rate_rps=1.0, prompt_len=18, decode_len=8, seed=4)
        report = engine.run_functional(lm, requests, seed=9)
        for result in report.results:
            reference = generate(lm, result.prompt_tokens, result.request.decode_len)
            assert result.generated_tokens == reference.generated_tokens

    def test_functional_run_validates_inputs(self, lm):
        engine = ServingEngine(max_concurrency=2)
        with pytest.raises(ValueError):
            engine.run_functional(lm, [])
        with pytest.raises(ValueError):
            engine.run_functional(lm, [Request("big", 0.0, 400, 100)])
