"""Overload controllers: brownout ladder, circuit breakers, hedge policy.

Three deterministic feedback controllers the cluster layers over the
admission policy (:mod:`repro.serve.admission`):

* :class:`BrownoutLadder` — graceful degradation under *sustained* KV or
  queue pressure.  Rather than shedding harder, the cluster steps down a
  ladder of service-quality levels, one rung per transition, after the
  pressure signal has stayed above ``high`` for ``hold`` consecutive
  rounds (and steps back up after ``hold`` rounds below ``low`` —
  hysteresis, so the ladder never flaps on a noisy signal):

  - level 1: disable speculative decoding (frees drafter compute + the
    rejected-token KV churn);
  - level 2: shrink (or freeze) the radix prefix cache, releasing
    snapshot pages back to the decode pool;
  - level 3: cap ``max_new_tokens`` for low-tier requests (priority >=
    ``min_tier``) at ``decode_cap`` — premium tiers keep full answers.

  Every transition is recorded ``(round, from_level, to_level, reason)``.

* :class:`CircuitBreaker` — per-replica closed → open → half-open over the
  replica's transient-error *retry* rate.  ``threshold`` retries within the
  sliding ``window`` rounds trips the breaker OPEN: routers stop sending
  new work there (the replica keeps serving what it has).  After
  ``cooldown`` rounds it goes HALF_OPEN and admits one deterministic probe
  per round; ``probe_rounds`` clean rounds close it, any new retry re-opens
  it.  This is faster and more targeted than waiting for the health monitor
  to mark the replica DEGRADED and drain it.

* :class:`HedgePolicy` — tail-taming by duplication.  When a replica's
  step slowdown (fault-injected inflation or stall period) has exceeded
  ``slowdown`` for ``patience`` consecutive rounds, each decode-phase
  request stuck on it is duplicated onto a healthy replica (seeded from a
  :class:`~repro.serve.kv_manager.RequestCheckpoint` where the cache
  supports it, recompute otherwise).  First copy to finish wins; the loser
  is cancelled with its pages released.  ``max_concurrent`` bounds
  duplicate work in flight.

All three consume only round-clock-keyed signals, so their decisions — and
the event logs — are byte-reproducible for a fixed seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.registry import parse_spec


# ----------------------------------------------------------------------
# Brownout degradation ladder
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BrownoutConfig:
    """Knobs for the brownout ladder.

    ``high``/``low`` bound the KV-pressure hysteresis band (projected live
    KV tokens over summed pool capacity); ``queue_high`` optionally treats
    a deep admission/requeue backlog as pressure too.  ``hold`` rounds
    above/below the band move one rung; ``levels`` rungs exist in total.
    ``decode_cap``/``min_tier`` parameterise the level-3 answer capping and
    ``radix_cap_tokens`` the level-2 prefix-cache shrink (0 freezes and
    clears the index outright).
    """

    high: float = 0.85
    low: float = 0.6
    hold: int = 3
    levels: int = 3
    decode_cap: int = 8
    min_tier: int = 1
    radix_cap_tokens: int = 0
    queue_high: int | None = None

    def __post_init__(self) -> None:
        if not 0 < self.low <= self.high:
            raise ValueError("need 0 < low <= high")
        if self.hold < 1:
            raise ValueError("hold must be >= 1")
        if not 1 <= self.levels <= 3:
            raise ValueError("levels must be in 1..3")
        if self.decode_cap < 1:
            raise ValueError("decode_cap must be >= 1")
        if self.min_tier < 0:
            raise ValueError("min_tier must be >= 0")
        if self.radix_cap_tokens < 0:
            raise ValueError("radix_cap_tokens must be >= 0")
        if self.queue_high is not None and self.queue_high < 1:
            raise ValueError("queue_high must be >= 1 (or None)")

    def describe(self) -> str:
        parts = [f"brownout:high={self.high:g},low={self.low:g}",
                 f"hold={self.hold}", f"levels={self.levels}"]
        if self.levels >= 3:
            parts.append(f"decode_cap={self.decode_cap}")
            parts.append(f"min_tier={self.min_tier}")
        if self.levels >= 2:
            parts.append(f"radix_cap_tokens={self.radix_cap_tokens}")
        if self.queue_high is not None:
            parts.append(f"queue_high={self.queue_high}")
        return ",".join(parts)


class BrownoutLadder:
    """Hysteresis state machine stepping through degradation levels."""

    def __init__(self, config: BrownoutConfig) -> None:
        self.config = config
        self.level = 0
        self._above = 0
        self._below = 0

    def observe(self, pressure: float, queue_depth: int,
                clock: int) -> tuple[int, int, str] | None:
        """Feed one round's signals; returns ``(old, new, reason)`` on a
        transition, else None.  At most one rung moves per round."""
        cfg = self.config
        hot_kv = pressure >= cfg.high
        hot_queue = (cfg.queue_high is not None
                     and queue_depth >= cfg.queue_high)
        if hot_kv or hot_queue:
            self._above += 1
            self._below = 0
        elif pressure <= cfg.low and not hot_queue:
            self._below += 1
            self._above = 0
        else:  # inside the hysteresis band: hold position
            self._above = 0
            self._below = 0
        if self._above >= cfg.hold and self.level < cfg.levels:
            old, self.level = self.level, self.level + 1
            self._above = 0
            reason = "queue" if (hot_queue and not hot_kv) else "kv-pressure"
            return (old, self.level, reason)
        if self._below >= cfg.hold and self.level > 0:
            old, self.level = self.level, self.level - 1
            self._below = 0
            return (old, self.level, "recovered")
        return None


def resolve_brownout(
        brownout: "BrownoutConfig | str | bool | None") -> BrownoutConfig | None:
    """Build a :class:`BrownoutConfig` from a config, spec string, or flag."""
    if brownout is None or brownout is False:
        return None
    if brownout is True:
        return BrownoutConfig()
    if isinstance(brownout, BrownoutConfig):
        return brownout
    name, params = parse_spec(str(brownout))
    if name not in ("brownout", "default"):
        raise ValueError(f"unknown brownout spec '{name}' (use 'brownout:...')")
    kwargs = {}
    for key, value in params.items():
        if key in ("high", "low"):
            kwargs[key] = float(value)
        elif key in ("hold", "levels", "decode_cap", "min_tier",
                     "radix_cap_tokens", "queue_high"):
            kwargs[key] = int(value)
        else:
            raise TypeError(f"unknown brownout parameter '{key}'")
    return BrownoutConfig(**kwargs)


# ----------------------------------------------------------------------
# Per-replica circuit breakers
# ----------------------------------------------------------------------
class BreakerState(Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


@dataclass(frozen=True)
class BreakerConfig:
    """``threshold`` retries within ``window`` rounds trip the breaker;
    ``cooldown`` rounds later it half-opens and admits one probe per round,
    closing after ``probe_rounds`` consecutive clean rounds."""

    threshold: int = 3
    window: int = 6
    cooldown: int = 8
    probe_rounds: int = 2

    def __post_init__(self) -> None:
        if self.threshold < 1:
            raise ValueError("threshold must be >= 1")
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if self.cooldown < 1:
            raise ValueError("cooldown must be >= 1")
        if self.probe_rounds < 1:
            raise ValueError("probe_rounds must be >= 1")

    def describe(self) -> str:
        return (f"breaker:threshold={self.threshold},window={self.window},"
                f"cooldown={self.cooldown},probe_rounds={self.probe_rounds}")


class CircuitBreaker:
    """One replica's closed → open → half-open breaker over retry deltas."""

    def __init__(self, config: BreakerConfig) -> None:
        self.config = config
        self.state = BreakerState.CLOSED
        self._history: list[int] = []
        self._open_until = 0
        self._probe_clean = 0
        self._probe_used = False

    def tick(self, clock: int) -> tuple[str, str] | None:
        """Start-of-round bookkeeping; returns a state transition if the
        cooldown elapsed (OPEN → HALF_OPEN)."""
        self._probe_used = False
        if self.state is BreakerState.OPEN and clock >= self._open_until:
            self.state = BreakerState.HALF_OPEN
            self._probe_clean = 0
            return ("open", "half-open")
        return None

    def record(self, retry_delta: int, clock: int) -> tuple[str, str] | None:
        """End-of-round retry delta; returns a state transition or None."""
        cfg = self.config
        if self.state is BreakerState.CLOSED:
            self._history.append(retry_delta)
            if len(self._history) > cfg.window:
                self._history.pop(0)
            if sum(self._history) >= cfg.threshold:
                self._trip(clock)
                return ("closed", "open")
        elif self.state is BreakerState.HALF_OPEN:
            if retry_delta > 0:
                self._trip(clock)
                return ("half-open", "open")
            self._probe_clean += 1
            if self._probe_clean >= cfg.probe_rounds:
                self.state = BreakerState.CLOSED
                self._history = []
                return ("half-open", "closed")
        return None

    def _trip(self, clock: int) -> None:
        self.state = BreakerState.OPEN
        self._open_until = clock + self.config.cooldown
        self._history = []
        self._probe_clean = 0

    def allows_routing(self) -> bool:
        """May the router send *new* work to this replica right now?"""
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            return False
        return not self._probe_used  # HALF_OPEN: one probe per round

    def note_routed(self) -> None:
        """A request was routed here; consumes the half-open probe slot."""
        if self.state is BreakerState.HALF_OPEN:
            self._probe_used = True

    def reset(self) -> None:
        """Forget everything (replica crashed or rejoined fresh)."""
        self.state = BreakerState.CLOSED
        self._history = []
        self._probe_clean = 0
        self._probe_used = False


def resolve_breaker(
        breaker: "BreakerConfig | str | bool | None") -> BreakerConfig | None:
    """Build a :class:`BreakerConfig` from a config, spec string, or flag."""
    if breaker is None or breaker is False:
        return None
    if breaker is True:
        return BreakerConfig()
    if isinstance(breaker, BreakerConfig):
        return breaker
    name, params = parse_spec(str(breaker))
    if name not in ("breaker", "default"):
        raise ValueError(f"unknown breaker spec '{name}' (use 'breaker:...')")
    kwargs = {}
    for key, value in params.items():
        if key in ("threshold", "window", "cooldown", "probe_rounds"):
            kwargs[key] = int(value)
        else:
            raise TypeError(f"unknown breaker parameter '{key}'")
    return BreakerConfig(**kwargs)


# ----------------------------------------------------------------------
# Hedged requests
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class HedgePolicy:
    """When a replica's step slowdown has been >= ``slowdown`` for
    ``patience`` consecutive rounds, duplicate its decode-phase requests
    onto healthy replicas (at most ``max_concurrent`` duplicates in
    flight); first copy to finish wins, the loser is cancelled."""

    slowdown: float = 1.5
    patience: int = 2
    max_concurrent: int = 2

    def __post_init__(self) -> None:
        if self.slowdown <= 1.0:
            raise ValueError("slowdown must be > 1.0")
        if self.patience < 1:
            raise ValueError("patience must be >= 1")
        if self.max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")

    def describe(self) -> str:
        return (f"hedge:slowdown={self.slowdown:g},patience={self.patience},"
                f"max_concurrent={self.max_concurrent}")


def resolve_hedge(
        hedge: "HedgePolicy | str | bool | None") -> HedgePolicy | None:
    """Build a :class:`HedgePolicy` from a policy, spec string, or flag."""
    if hedge is None or hedge is False:
        return None
    if hedge is True:
        return HedgePolicy()
    if isinstance(hedge, HedgePolicy):
        return hedge
    name, params = parse_spec(str(hedge))
    if name not in ("hedge", "default"):
        raise ValueError(f"unknown hedge spec '{name}' (use 'hedge:...')")
    kwargs = {}
    for key, value in params.items():
        if key == "slowdown":
            kwargs[key] = float(value)
        elif key in ("patience", "max_concurrent"):
            kwargs[key] = int(value)
        else:
            raise TypeError(f"unknown hedge parameter '{key}'")
    return HedgePolicy(**kwargs)


__all__ = [
    "BreakerConfig",
    "BreakerState",
    "BrownoutConfig",
    "BrownoutLadder",
    "CircuitBreaker",
    "HedgePolicy",
    "resolve_breaker",
    "resolve_brownout",
    "resolve_hedge",
]
