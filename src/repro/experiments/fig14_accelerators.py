"""Figure 14: comparison with other edge LLM accelerators.

Kelle+eDRAM is compared against the NVIDIA Jetson Orin (FP8 GPU), LLM.npu,
DynaX and COMET; the paper normalises speedup and energy efficiency to the
Jetson.
"""

from __future__ import annotations

from repro.baselines.accelerators import RIVAL_ACCELERATORS
from repro.baselines.systems import build_kelle_edram
from repro.experiments.common import HARDWARE_BUDGETS, simulate_system
from repro.llm.config import get_config
from repro.utils.tables import TableResult
from repro.workloads.generator import trace_for_dataset

ACCELERATOR_ORDER = ("jetson-orin", "llm.npu", "dynax", "comet", "kelle+edram")


def run(model_names: tuple[str, ...] = ("llama2-7b", "llama3.2-3b"),
        datasets: tuple[str, ...] = ("lambada", "triviaqa", "qasper", "pg19")) -> TableResult:
    """Speedup and energy efficiency of each accelerator, normalised to the Jetson."""
    table = TableResult(
        title="Figure 14: comparison with other LLM accelerators",
        columns=["model", "dataset", "accelerator", "latency_s", "energy_j", "speedup",
                 "energy_efficiency"],
    )
    for model_name in model_names:
        model = get_config(model_name)
        for dataset in datasets:
            budget = HARDWARE_BUDGETS[dataset]
            trace = trace_for_dataset(dataset)
            jetson = RIVAL_ACCELERATORS["jetson-orin"](budget).simulate(model, trace)
            results = {"jetson-orin": jetson}
            for name in ("llm.npu", "dynax", "comet"):
                results[name] = RIVAL_ACCELERATORS[name](budget).simulate(model, trace)
            results["kelle+edram"] = simulate_system(build_kelle_edram(budget), model_name, dataset)
            for name in ACCELERATOR_ORDER:
                result = results[name]
                table.add_row(
                    model=model_name,
                    dataset=dataset,
                    accelerator=name,
                    latency_s=result.total_latency_s,
                    energy_j=result.total_energy_j,
                    speedup=jetson.total_latency_s / result.total_latency_s,
                    energy_efficiency=jetson.energy_per_token_j / result.energy_per_token_j,
                )
    return table
