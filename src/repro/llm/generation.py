"""Prefill + auto-regressive decode driver.

This is the serving loop of Figure 1 (a) of the paper: the context is
processed in parallel during pre-filling, then tokens are generated
auto-regressively, each step reading the KV cache managed by the active
policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.llm.cache import KVCacheFactory, LayerKVCache
from repro.llm.functional import log_softmax, softmax
from repro.llm.model import DecoderLM
from repro.utils.rng import derive_rng


@dataclass
class GenerationResult:
    """Outcome of one prefill + decode run."""

    prompt_tokens: list[int]
    generated_tokens: list[int]
    logprobs: list[float] = field(default_factory=list)
    caches: list[LayerKVCache] = field(default_factory=list)

    @property
    def total_tokens(self) -> int:
        return len(self.prompt_tokens) + len(self.generated_tokens)


def _select_token(logits: np.ndarray, temperature: float, rng: np.random.Generator) -> int:
    if temperature <= 0:
        return int(np.argmax(logits))
    probs = softmax(logits / temperature)
    return int(rng.choice(probs.size, p=probs))


def generate(model: DecoderLM, prompt_tokens: Sequence[int], max_new_tokens: int,
             cache_factory: KVCacheFactory | None = None, temperature: float = 0.0,
             eos_id: int | None = None, seed: int = 0) -> GenerationResult:
    """Generate ``max_new_tokens`` continuation tokens for ``prompt_tokens``.

    ``cache_factory`` selects the KV-cache policy (full cache by default);
    ``temperature`` 0 means greedy decoding.
    """
    if max_new_tokens < 0:
        raise ValueError("max_new_tokens must be non-negative")
    prompt_tokens = list(int(t) for t in prompt_tokens)
    if not prompt_tokens:
        raise ValueError("prompt_tokens must be non-empty")
    rng = derive_rng(seed, "generate")
    caches = model.make_caches(cache_factory)
    logits = model.prefill(prompt_tokens, caches)
    result = GenerationResult(prompt_tokens=prompt_tokens, generated_tokens=[], caches=caches)
    position = len(prompt_tokens)
    for _ in range(max_new_tokens):
        token = _select_token(logits, temperature, rng)
        logp = float(log_softmax(logits)[token])
        result.generated_tokens.append(token)
        result.logprobs.append(logp)
        if eos_id is not None and token == eos_id:
            break
        logits = model.decode_step(token, position, caches)
        position += 1
    return result


def forced_decode_logprobs(model: DecoderLM, prompt_tokens: Sequence[int],
                           continuation_tokens: Sequence[int],
                           cache_factory: KVCacheFactory | None = None) -> list[float]:
    """Log-probabilities of a forced continuation under a cache policy.

    This is the primitive behind the cache-aware perplexity evaluation: the
    prompt is pre-filled, then each continuation token is scored with the
    logits produced while the *policy-managed* cache serves attention, and fed
    back as the next input (teacher forcing).
    """
    prompt_tokens = list(int(t) for t in prompt_tokens)
    continuation_tokens = list(int(t) for t in continuation_tokens)
    if not prompt_tokens or not continuation_tokens:
        raise ValueError("prompt and continuation must be non-empty")
    caches = model.make_caches(cache_factory)
    logits = model.prefill(prompt_tokens, caches)
    logprobs: list[float] = []
    position = len(prompt_tokens)
    previous = None
    for token in continuation_tokens:
        if previous is not None:
            logits = model.decode_step(previous, position, caches)
            position += 1
        logprobs.append(float(log_softmax(logits)[token]))
        previous = token
    return logprobs
