"""Benchmark: regenerate Figure 4 (retention failure rate vs refresh interval)."""

from repro.experiments import fig4_retention


def test_bench_fig4(benchmark, once):
    table = once(benchmark, fig4_retention.run)
    rates = table.column("failure_rate")
    assert rates == sorted(rates)
    markers = {round(row["refresh_interval_us"]): row["failure_rate"]
               for row in table.rows if row["is_paper_marker"]}
    # The paper's marked points: ~no failures at 45 us, ~1e-4 at 784 us,
    # ~1e-3 at 1778 us, ~1e-2 at 9120 us (order-of-magnitude agreement).
    assert markers[45] < 1e-5
    assert 1e-5 < markers[784] < 1e-3
    assert 1e-4 < markers[1778] < 5e-3
    assert 1e-3 < markers[9120] < 5e-2
    print(table.to_markdown())
