"""Benchmark: regenerate Figure 13 (end-to-end speedup and energy efficiency)."""

from repro.experiments import fig13_end2end


def test_bench_fig13(benchmark, once):
    table = once(benchmark, fig13_end2end.run,
                 model_names=("llama2-7b", "llama2-13b", "llama3.2-3b", "mistral-7b"),
                 datasets=("lambada", "triviaqa", "qasper", "pg19"))
    speedup, efficiency = fig13_end2end.average_improvements(table)
    # Paper headline: 3.9x speedup / 4.5x energy efficiency on average.  The
    # analytical substrate reproduces the ordering and multi-x gains; the
    # absolute factors are smaller (see EXPERIMENTS.md).
    assert speedup > 1.8
    assert efficiency > 1.5
    # Per-row orderings: Kelle+eDRAM is (essentially) the best system on every
    # (model, task) pair and strictly the best on the long-decode workloads
    # where the KV cache dominates.  On GQA models with short decodes the
    # analytical model places Kelle+eDRAM and AERP+SRAM within a few percent.
    for model in {row["model"] for row in table.rows}:
        for dataset in {row["dataset"] for row in table.rows}:
            cell = {row["system"]: row for row in table.rows
                    if row["model"] == model and row["dataset"] == dataset}
            best_eff = max(row["energy_efficiency"] for row in cell.values())
            assert cell["kelle+edram"]["energy_efficiency"] >= best_eff * 0.95
            if dataset in ("qasper", "pg19"):
                assert cell["kelle+edram"]["energy_efficiency"] == best_eff
            assert cell["aerp+sram"]["energy_efficiency"] >= cell["aep+sram"]["energy_efficiency"]
            assert cell["original+edram"]["energy_efficiency"] < 1.0
    print(table.to_markdown())
    print(fig13_end2end.run_energy_breakdown().to_markdown())


def test_bench_fig13_energy_breakdown(benchmark, once):
    pie = once(benchmark, fig13_end2end.run_energy_breakdown)
    fractions = {row["component"]: row["fraction_of_onchip"] for row in pie.rows}
    assert abs(sum(fractions.values()) - 1.0) < 1e-6
    # The KV path no longer dominates on-chip energy once Kelle's policies run.
    assert fractions["kv"] < 0.75
