"""Benchmark: regenerate Figure 14 (comparison with rival edge LLM accelerators)."""

from repro.experiments import fig14_accelerators


def test_bench_fig14(benchmark, once):
    table = once(benchmark, fig14_accelerators.run,
                 model_names=("llama2-7b", "llama3.2-3b"),
                 datasets=("lambada", "triviaqa", "qasper", "pg19"))
    for model in {row["model"] for row in table.rows}:
        for dataset in {row["dataset"] for row in table.rows}:
            cell = {row["accelerator"]: row for row in table.rows
                    if row["model"] == model and row["dataset"] == dataset}
            # The Jetson is the normalisation point and the least efficient.
            assert cell["jetson-orin"]["energy_efficiency"] == 1.0
            assert cell["kelle+edram"]["energy_efficiency"] > 2.0
            # Kelle+eDRAM is the most energy-efficient design wherever the KV
            # cache is the bottleneck: every long-decode workload, and every
            # workload for the non-GQA LLaMA2-7B model.  (On the 3B GQA model
            # with short decodes the KV footprint is small, so the rival
            # decode-stage optimisations close most of the gap.)
            best = max(cell.values(), key=lambda row: row["energy_efficiency"])
            if dataset in ("qasper", "pg19"):
                assert best["accelerator"] == "kelle+edram"
            else:
                assert cell["kelle+edram"]["energy_efficiency"] >= best["energy_efficiency"] * 0.75
            assert cell["kelle+edram"]["speedup"] >= cell["llm.npu"]["speedup"] * 0.9
    print(table.to_markdown())
