"""Benchmark: regenerate Figure 3 (motivation: SRAM scaling, area, eDRAM refresh energy)."""

from repro.experiments import fig3_motivation


def test_bench_fig3a_latency(benchmark, once):
    table = once(benchmark, fig3_motivation.run_latency)
    # Larger on-chip memory never hurts; the paper reports a 1.27x mean speedup.
    assert all(row["speedup_8mb"] >= 1.0 for row in table.rows)
    print(table.to_markdown())


def test_bench_fig3b_area(benchmark, once):
    table = once(benchmark, fig3_motivation.run_area)
    by_name = {row["system"]: row for row in table.rows}
    # Figure 3 (b): the eDRAM system fits in a smaller die than the SRAM system.
    assert by_name["edram-8mb"]["onchip_total_mm2"] < by_name["sram-8mb"]["onchip_total_mm2"]
    print(table.to_markdown())


def test_bench_fig3c_energy_breakdown(benchmark, once):
    table = once(benchmark, fig3_motivation.run_energy_breakdown)
    # Figure 3 (c): without optimisation, refresh is a major share of energy
    # (the paper reports up to 46%; the analytical model gives an even larger
    # share because the guard interval is charged on the full occupied array).
    assert max(row["refresh_frac"] for row in table.rows) > 0.3
    print(table.to_markdown())
