"""KV-cache interface, contiguous storage substrate and the full cache.

The attention layer of :class:`repro.llm.model.DecoderLM` talks to the cache
through a narrow interface so that the paper's policies (AERP with eviction
and recomputation, 2DRP fault injection) and the baselines (full cache,
StreamingLLM, H2O, random eviction, quantized caches) are interchangeable.

All caches are **per-layer** objects with **per-head** slot state, because
AERP evicts independently per attention head (Section 4.1 of the paper) and
relies on the permutation invariance of Equations 1-2 to reuse the victim's
slot for the incoming token.

Storage-wise every cache builds on :class:`ContiguousKVStore`: preallocated
``[H, capacity, head_dim]`` buffers grown by amortised doubling.  ``fetch``
returns *views* into these buffers, so the per-step cost of reading the cache
is O(1) instead of the O(n) re-stacking a list-of-arrays layout pays.
"""

from __future__ import annotations

import abc
from typing import Callable, Protocol

import numpy as np

from repro.registry import register

#: Recompute callback: maps (input vector ``x`` of size C, absolute position)
#: to the per-head key and value vectors ``([H, d], [H, d])`` for this layer.
RecomputeFn = Callable[[np.ndarray, int], tuple[np.ndarray, np.ndarray]]


class ContiguousKVStore:
    """Preallocated contiguous per-head K/V slot storage.

    Keys and values live in ``[n_heads, capacity, head_dim]`` float32 buffers;
    ``capacity`` doubles whenever an insert would overflow, so the amortised
    cost of ``append`` is O(head_dim) and ``view()`` is a zero-copy slice.
    Slots are ordered; :meth:`delete_slot` compacts the tail left by one
    position (a single vectorised memmove), preserving slot order for the
    eviction policies that rely on it.
    """

    __slots__ = ("n_heads", "head_dim", "_keys", "_values", "_count", "_valid")

    def __init__(self, n_heads: int, head_dim: int, initial_capacity: int = 64) -> None:
        if n_heads <= 0 or head_dim <= 0 or initial_capacity <= 0:
            raise ValueError("n_heads, head_dim and initial_capacity must be positive")
        self.n_heads = n_heads
        self.head_dim = head_dim
        self._keys = np.empty((n_heads, initial_capacity, head_dim), dtype=np.float32)
        self._values = np.empty((n_heads, initial_capacity, head_dim), dtype=np.float32)
        self._valid = np.ones((n_heads, initial_capacity), dtype=bool)
        self._count = 0

    def __len__(self) -> int:
        return self._count

    @property
    def capacity(self) -> int:
        return self._keys.shape[1]

    def reserve(self, extra: int) -> None:
        """Grow (by doubling) until ``extra`` more slots fit."""
        needed = self._count + extra
        capacity = self.capacity
        if needed <= capacity:
            return
        while capacity < needed:
            capacity *= 2
        for name in ("_keys", "_values"):
            old = getattr(self, name)
            grown = np.empty((self.n_heads, capacity, self.head_dim), dtype=np.float32)
            grown[:, :self._count] = old[:, :self._count]
            setattr(self, name, grown)
        self._valid = np.ones((self.n_heads, capacity), dtype=bool)

    def append(self, key: np.ndarray, value: np.ndarray) -> int:
        """Insert one ``[H, d]`` K/V pair, returning its slot index."""
        self.reserve(1)
        slot = self._count
        self._keys[:, slot] = key
        self._values[:, slot] = value
        self._count += 1
        return slot

    def extend(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Bulk-insert ``[H, n, d]`` K/V blocks in one buffer write."""
        n = keys.shape[1]
        if n == 0:
            return
        self.reserve(n)
        self._keys[:, self._count:self._count + n] = keys
        self._values[:, self._count:self._count + n] = values
        self._count += n

    def delete_slot(self, slot: int) -> None:
        """Remove one slot, shifting the tail left (slot order preserved)."""
        if not 0 <= slot < self._count:
            raise IndexError(f"slot {slot} out of range [0, {self._count})")
        if slot < self._count - 1:
            self._keys[:, slot:self._count - 1] = self._keys[:, slot + 1:self._count]
            self._values[:, slot:self._count - 1] = self._values[:, slot + 1:self._count]
        self._count -= 1

    def truncate(self, n: int) -> None:
        """Shrink to the first ``n`` slots (O(1): the view just gets shorter)."""
        if not 0 <= n <= self._count:
            raise ValueError(f"truncate to {n} out of range [0, {self._count}]")
        self._count = n

    def view(self) -> tuple[np.ndarray, np.ndarray]:
        """Zero-copy ``([H, n, d], [H, n, d])`` views of the live slots."""
        return self._keys[:, :self._count], self._values[:, :self._count]

    def valid_view(self) -> np.ndarray:
        """All-true ``[H, n]`` validity view matching :meth:`view` (zero-copy).

        Every store-backed slot is live by construction, so caches whose
        policies never invalidate individual slots can return this directly
        from ``fetch``.
        """
        return self._valid[:, :self._count]


class LayerKVCache(abc.ABC):
    """Abstract per-layer KV cache with per-head slots."""

    #: Whether this cache supports *incremental* prefill and prefix forking
    #: with exact full-cache semantics (see :meth:`extend_chunk` and
    #: :meth:`fork`).  Eviction/quantization policies whose prefill decisions
    #: depend on seeing the whole prompt at once leave this False, and the
    #: serving engine's prefix-sharing/chunked-prefill paths skip them.
    supports_chunked_prefill: bool = False

    #: Whether this cache supports :meth:`truncate` — rolling the cache back
    #: to a shorter prefix with exact full-cache semantics.  Speculative
    #: decoding needs it to discard the KV entries of rejected draft tokens;
    #: drivers fall back to plain (non-speculative) decoding for caches that
    #: leave this False.
    supports_rollback: bool = False

    #: Whether this cache can serialise its state into a self-contained
    #: checkpoint (``export_state``) and rebuild it in a compatible pool
    #: (``import_state``) — the recompute-free failover/migration primitive.
    #: Only pool-backed caches (:class:`repro.core.kv_pool.PagedKVCache`)
    #: advertise it; every other cache keeps the eviction-and-recompute
    #: recovery path.
    supports_checkpoint: bool = False

    #: How (if at all) this cache can join a *fused* batched decode group —
    #: attention for a whole group of sequences as one batched BLAS call per
    #: layer (:meth:`repro.llm.model.DecoderLM.decode_step_batch`).  A cache
    #: qualifies only if its ``fetch`` mask is always all-true and it does
    #: not depend on per-step :meth:`observe_attention` feedback:
    #:
    #: * ``"paged"`` — pool-backed; the fused path appends straight into
    #:   pool pages and gathers group K/V via page-table indexing;
    #: * ``"contig"`` — private contiguous storage; same-length sequences
    #:   are stacked into a shared workspace;
    #: * ``None`` — no fused layout (eviction/importance policies whose
    #:   validity masks and ``observe_attention`` hooks need the
    #:   per-sequence path); the batched decode falls back to the
    #:   sequence-at-a-time attention loop for them.
    fused_kind: "str | None" = None

    #: Whether :meth:`append` stores the K/V vectors *verbatim* — no
    #: quantization round-trip or storage-dtype rounding.  When every member
    #: of a fused decode group stores verbatim, the group's persistent K/V
    #: stacks extend directly from the batched projections; otherwise the
    #: fused path reads each newly stored token back so the stacks hold
    #: exactly what the cache holds.
    fused_store_identity: bool = False

    def __init__(self, n_heads: int, head_dim: int, d_model: int) -> None:
        if n_heads <= 0 or head_dim <= 0 or d_model <= 0:
            raise ValueError("n_heads, head_dim and d_model must be positive")
        self.n_heads = n_heads
        self.head_dim = head_dim
        self.d_model = d_model
        #: Mutation counter for fused group-buffer invalidation: bumped
        #: whenever already-stored tokens may change or disappear (truncate,
        #: release, checkpoint import).  Plain appends do NOT bump it — the
        #: fused decode path relies on that to extend its persistent stacked
        #: K/V buffers incrementally instead of re-gathering every step.
        self.write_epoch = 0

    @abc.abstractmethod
    def prefill(self, keys: np.ndarray, values: np.ndarray, inputs: np.ndarray,
                attn_probs: np.ndarray) -> None:
        """Load the context tokens processed in parallel during pre-filling.

        Parameters
        ----------
        keys, values:
            ``[H, N_ctx, head_dim]`` per-head projections of the context.
        inputs:
            ``[N_ctx, d_model]`` normalised block inputs (needed when a token
            is stored in recomputation format).
        attn_probs:
            ``[H, N_ctx, N_ctx]`` causal attention probabilities of the
            pre-filling pass, used to compute importance scores.
        """

    @abc.abstractmethod
    def append(self, key: np.ndarray, value: np.ndarray, x: np.ndarray, position: int) -> None:
        """Insert the KV vectors of a newly decoded token.

        ``key``/``value`` are ``[H, head_dim]``, ``x`` is the ``[d_model]``
        block input and ``position`` the absolute token position (needed to
        re-apply rotary embeddings when the token is recomputed later).
        """

    @abc.abstractmethod
    def fetch(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(K, V, valid)`` with shapes ``[H, n, d], [H, n, d], [H, n]``.

        ``valid`` is a boolean mask marking live slots; invalid slots must be
        ignored by the attention computation.  The returned arrays may be
        *views* into the cache's internal buffers — callers must treat them as
        read-only and must not hold them across a mutating call.
        """

    @abc.abstractmethod
    def observe_attention(self, probs: np.ndarray) -> None:
        """Feed back the attention probabilities of the newest query.

        ``probs`` has shape ``[H, n]`` aligned with the slots returned by the
        immediately preceding :meth:`fetch`.
        """

    @property
    @abc.abstractmethod
    def num_tokens(self) -> int:
        """Number of live tokens (maximum across heads)."""

    @abc.abstractmethod
    def stored_bytes(self, bits_per_element: int = 16) -> int:
        """Bytes of cache storage currently occupied (for energy accounting)."""

    def end_step(self) -> None:
        """Hook called once per decode step after attention; default no-op."""

    # -- chunked prefill and prefix forking (optional capabilities) -----
    def extend_chunk(self, keys: np.ndarray, values: np.ndarray, inputs: np.ndarray,
                     positions: np.ndarray) -> None:
        """Append a prefill *chunk* of ``[H, c, d]`` K/V pairs at ``positions``.

        Only caches with ``supports_chunked_prefill`` implement this; it must
        leave the cache in exactly the state a whole-prompt :meth:`prefill`
        of the concatenated chunks would.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support chunked prefill")

    def fork(self, upto: int | None = None) -> "LayerKVCache":
        """Return an independent cache sharing the first ``upto`` tokens.

        Writes to either side must never be visible to the other.  Only
        caches with ``supports_chunked_prefill`` implement this; it is what
        the serving engine's radix prefix index snapshots and reuses.
        """
        raise NotImplementedError(f"{type(self).__name__} does not support forking")

    def truncate(self, n: int) -> None:
        """Roll the cache back to its first ``n`` tokens (KV rollback).

        After ``truncate(n)`` the cache must be indistinguishable from one
        that only ever saw the first ``n`` tokens — this is what discards the
        KV entries of rejected speculative tokens.  Only caches with
        ``supports_rollback`` implement it natively (``full`` shrinks its
        contiguous view, ``paged`` returns rolled-back pages to the pool).

        A cache that supports :meth:`fork` but not in-place truncation can
        realise the same semantics with a *fork-based fallback* — replace the
        cache with ``self.fork(upto=n)`` and :meth:`release` the original —
        at the cost of the fork's bookkeeping.  The eviction/quantization
        policies support neither (their slot state is not a pure token
        prefix: evicted-slot order and accumulated importance cannot be
        rewound), so speculative drivers simply fall back to plain decoding
        for them.
        """
        raise NotImplementedError(f"{type(self).__name__} does not support rollback")

    def release(self) -> None:
        """Return backing storage to its owner (no-op for private storage).

        The serving engine calls this when a sequence retires; pool-backed
        caches drop their page references here.  Bumps :attr:`write_epoch`
        so any fused group buffer still referencing this cache restacks.
        """
        self.write_epoch += 1


class KVCacheFactory(Protocol):
    """Factory building one :class:`LayerKVCache` per decoder layer."""

    def __call__(self, layer_index: int, n_heads: int, head_dim: int, d_model: int,
                 recompute_fn: RecomputeFn) -> LayerKVCache:
        ...


class FullKVCache(LayerKVCache):
    """The unbounded baseline cache: every token's KV vectors are retained.

    Storage is one :class:`ContiguousKVStore`; prefill is a single bulk buffer
    write and ``fetch`` returns zero-copy views, so the decode hot loop does no
    per-token Python work at all.
    """

    supports_chunked_prefill = True
    supports_rollback = True
    fused_kind = "contig"
    fused_store_identity = True  # fp32 verbatim storage, no transform

    def __init__(self, n_heads: int, head_dim: int, d_model: int) -> None:
        super().__init__(n_heads, head_dim, d_model)
        self._store = ContiguousKVStore(n_heads, head_dim)

    def prefill(self, keys: np.ndarray, values: np.ndarray, inputs: np.ndarray,
                attn_probs: np.ndarray) -> None:
        del inputs, attn_probs
        self._store.extend(np.asarray(keys, dtype=np.float32),
                           np.asarray(values, dtype=np.float32))

    def append(self, key: np.ndarray, value: np.ndarray, x: np.ndarray, position: int) -> None:
        del x, position
        self._store.append(key, value)

    def fetch(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        keys, values = self._store.view()
        return keys, values, self._store.valid_view()

    def observe_attention(self, probs: np.ndarray) -> None:
        del probs  # the full cache does not track importance

    def extend_chunk(self, keys: np.ndarray, values: np.ndarray, inputs: np.ndarray,
                     positions: np.ndarray) -> None:
        del inputs, positions
        self._store.extend(np.asarray(keys, dtype=np.float32),
                           np.asarray(values, dtype=np.float32))

    def fork(self, upto: int | None = None) -> "FullKVCache":
        """Fork by copying the prefix (the full cache has no shareable pages)."""
        upto = len(self._store) if upto is None else int(upto)
        if not 0 <= upto <= len(self._store):
            raise ValueError(f"fork upto={upto} out of range [0, {len(self._store)}]")
        child = FullKVCache(self.n_heads, self.head_dim, self.d_model)
        keys, values = self._store.view()
        child._store.extend(keys[:, :upto], values[:, :upto])
        return child

    def truncate(self, n: int) -> None:
        """Native rollback: shrink the contiguous view to ``n`` tokens."""
        self._store.truncate(n)
        self.write_epoch += 1

    @property
    def num_tokens(self) -> int:
        return len(self._store)

    def stored_bytes(self, bits_per_element: int = 16) -> int:
        elements = 2 * len(self._store) * self.n_heads * self.head_dim
        return elements * bits_per_element // 8


def full_cache_factory(layer_index: int, n_heads: int, head_dim: int, d_model: int,
                       recompute_fn: RecomputeFn) -> LayerKVCache:
    """Factory for the full-cache baseline (ignores the recompute callback)."""
    del layer_index, recompute_fn
    return FullKVCache(n_heads, head_dim, d_model)


@register("cache", "full", "fp16", description="unbounded full KV cache (no eviction)")
def _build_full_cache() -> KVCacheFactory:
    """Registry builder for the full-cache baseline: ``resolve("cache", "full")``."""
    return full_cache_factory
