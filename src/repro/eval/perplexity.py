"""Perplexity evaluation, with and without a policy-managed KV cache.

The paper reports WikiText-2 and PG19 perplexity under each KV-cache policy.
Because eviction and retention faults only affect the *decoding* path, the
cache-aware perplexity here scores the continuation tokens produced by
teacher-forced decoding through the policy-managed cache, after a normal
pre-filling pass over the prompt.
"""

from __future__ import annotations

import numpy as np

from repro.llm.cache import KVCacheFactory
from repro.llm.functional import cross_entropy
from repro.llm.generation import forced_decode_logprobs
from repro.llm.model import DecoderLM


def perplexity_full(model: DecoderLM, tokens: np.ndarray) -> float:
    """Teacher-forced perplexity with full attention (no cache policy)."""
    tokens = np.asarray(tokens, dtype=np.int64)
    if tokens.size < 2:
        raise ValueError("need at least two tokens")
    logits = model.forward_full(tokens[:-1])
    return float(np.exp(cross_entropy(logits, tokens[1:])))


def perplexity_with_cache(model: DecoderLM, tokens: np.ndarray, cache_factory: KVCacheFactory | None,
                          prefill_len: int) -> float:
    """Perplexity of the continuation under a policy-managed KV cache.

    ``tokens[:prefill_len]`` is the prompt processed during pre-filling;
    ``tokens[prefill_len:]`` is scored token by token while the cache policy
    (eviction, recomputation, fault injection) is active.
    """
    tokens = np.asarray(tokens, dtype=np.int64)
    if not 0 < prefill_len < tokens.size:
        raise ValueError("prefill_len must split the sequence into non-empty prompt and continuation")
    prompt = tokens[:prefill_len]
    continuation = tokens[prefill_len:]
    logprobs = forced_decode_logprobs(model, prompt, continuation, cache_factory=cache_factory)
    return float(np.exp(-np.mean(logprobs)))


def perplexity_over_documents(model: DecoderLM, documents: list[np.ndarray],
                              cache_factory: KVCacheFactory | None, prefill_len: int) -> float:
    """Mean cache-aware perplexity over several documents (token-weighted)."""
    if not documents:
        raise ValueError("documents must be non-empty")
    total_nll = 0.0
    total_tokens = 0
    for doc in documents:
        doc = np.asarray(doc, dtype=np.int64)
        ppl = perplexity_with_cache(model, doc, cache_factory, prefill_len)
        n = doc.size - prefill_len
        total_nll += np.log(ppl) * n
        total_tokens += n
    return float(np.exp(total_nll / total_tokens))
