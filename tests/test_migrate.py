"""Recompute-free failover tests: KV checkpointing and live migration.

Covers the ``"migration"`` registry kind and :func:`resolve_migration`
composition, session-level :meth:`FunctionalSession.extract_request` /
:meth:`~FunctionalSession.inject_request` token identity across every cache
spec (checkpoint restore for paged caches, eviction-and-recompute for the
rest), stale-checkpoint rewind and inconsistent-checkpoint fallback, CoW
radix-shared migration, and the cluster-level policies: proactive drain of
DEGRADED replicas, periodic crash checkpoints bounding recompute loss, and
the issue's edge cases (cancel while migrating, deadline expiry during
drain, crash of a migration target).
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from cache_specs import ALL_CACHE_SPECS
from repro.registry import RegistryError, known, resolve
from repro.serve import (
    ClusterEngine,
    MigrationPolicy,
    Request,
    ServingEngine,
    resolve_migration,
)

BOUNDED = "paged:page_tokens=8,initial_pages=16,grow=false"


def _request(request_id: str, prompt, decode_len: int = 6, arrival: float = 0.0,
             **kwargs) -> Request:
    return Request(request_id=request_id, arrival_time_s=arrival,
                   prompt_len=len(prompt), decode_len=decode_len,
                   prompt_tokens=tuple(prompt), **kwargs)


def _trace(n: int = 6, decode_len: int = 6, **kwargs) -> list[Request]:
    return [_request(f"r{i}", [(3 * i + j) % 30 + 1 for j in range(12)],
                     decode_len=decode_len, arrival=i * 0.01, **kwargs)
            for i in range(n)]


def _tokens(report) -> dict:
    return {r.request.request_id: tuple(r.generated_tokens)
            for r in report.results}


def _by_id(report) -> dict:
    return {r.request.request_id: r for r in report.results}


@pytest.fixture
def lm():
    from repro.llm.config import tiny_config
    from repro.llm.model import DecoderLM

    return DecoderLM(tiny_config("migrate-tiny", n_layers=2, d_model=32,
                                 n_heads=4, d_ff=64, vocab_size=48,
                                 max_seq_len=512), seed=7)


class TestMigrationRegistry:
    def test_migration_kind_registered(self):
        assert set(known("migration")) == {"none", "drain-on-degraded",
                                           "checkpoint"}

    def test_specs_round_trip(self):
        policy = resolve("migration", "drain-on-degraded:max_inflight=2")
        assert policy == MigrationPolicy(drain_max_inflight=2)
        assert policy.enabled
        assert policy.describe() == "drain-on-degraded:max_inflight=2"
        policy = resolve("migration", "checkpoint:interval=4")
        assert policy == MigrationPolicy(checkpoint_interval=4)
        assert policy.describe() == "checkpoint:interval=4"
        none = resolve("migration", "none")
        assert not none.enabled and none.describe() == "none"

    def test_resolve_migration_helper_and_composition(self):
        assert not resolve_migration(None).enabled
        built = MigrationPolicy(checkpoint_interval=2)
        assert resolve_migration(built) is built
        composed = resolve_migration(["drain-on-degraded:max_inflight=1",
                                      "checkpoint:interval=4"])
        assert composed == MigrationPolicy(drain_max_inflight=1,
                                           checkpoint_interval=4)
        assert (composed.describe()
                == "drain-on-degraded:max_inflight=1+checkpoint:interval=4")
        # Later members override earlier ones field-wise.
        assert resolve_migration(
            ["checkpoint:interval=2", "checkpoint:interval=8"]
        ).checkpoint_interval == 8

    def test_invalid_specs_raise(self):
        with pytest.raises(ValueError):
            resolve("migration", "drain-on-degraded:max_inflight=-1")
        with pytest.raises(ValueError):
            resolve("migration", "checkpoint:interval=0")
        with pytest.raises(RegistryError):
            resolve("migration", "teleport")
        with pytest.raises(RegistryError):
            resolve("migration", "checkpoint:cadence=4")


class TestSessionMigration:
    """extract_request/inject_request across two standalone sessions."""

    def _run_split(self, lm, requests, cache, *, steps_before=6,
                   move=2, corrupt=False):
        """Serve ``requests`` on session A, migrate ``move`` of them to
        session B after ``steps_before`` steps, run both to completion and
        return ``(report_a, report_b, checkpoints_seen)``."""
        src = ServingEngine(max_concurrency=2).start_functional(
            lm, cache=cache, seed=0)
        src.submit(requests)
        for _ in range(steps_before):
            src.step()
        dst = ServingEngine(max_concurrency=2).start_functional(
            lm, cache=cache, seed=0)
        checkpoints = []
        for request in requests[:move]:
            extracted = src.extract_request(request.request_id)
            if extracted is None:
                continue
            state, ckpt = extracted
            checkpoints.append(ckpt)
            if corrupt and ckpt is not None:
                state.checkpoint = replace(
                    ckpt, generated=tuple(t + 1 for t in ckpt.generated))
            dst.inject_request(state)
        while src.step():
            pass
        while dst.step():
            pass
        return src.finish(), dst.finish(), checkpoints

    @pytest.mark.parametrize("spec", ALL_CACHE_SPECS)
    def test_extract_inject_is_token_identical(self, lm, spec):
        requests = _trace(4, decode_len=8)
        reference = ServingEngine(max_concurrency=2).run_functional(
            lm, requests, cache=spec, seed=0)
        report_a, report_b, checkpoints = self._run_split(
            lm, requests, spec)
        combined = {**_by_id(report_a), **_by_id(report_b)}
        assert set(combined) == {r.request_id for r in requests}
        assert all(r.status == "finished" for r in combined.values())
        assert ({rid: tuple(r.generated_tokens)
                 for rid, r in combined.items()} == _tokens(reference))
        # Decode-phase checkpoints exist exactly when the cache supports them.
        if spec.startswith("paged"):
            assert checkpoints and all(c is not None for c in checkpoints)
            assert report_b.n_restored == len(checkpoints)
            assert report_b.recompute_tokens_saved > 0
        else:
            assert all(c is None for c in checkpoints)
            assert report_b.n_restored == 0

    def test_stale_checkpoint_rewinds_token_identically(self, lm):
        # The crash-recovery path: a periodic stash is two decode steps old
        # by the time the replica dies; the rewound requests re-decode the
        # lost suffix token-identically instead of re-prefilling.
        requests = _trace(3, decode_len=10)
        reference = ServingEngine(max_concurrency=2).run_functional(
            lm, requests, cache="paged:page_tokens=4", seed=0)
        src = ServingEngine(max_concurrency=2).start_functional(
            lm, cache="paged:page_tokens=4", seed=0)
        src.submit(requests)
        for _ in range(5):
            src.step()
        stash = src.checkpoint_requests()
        assert stash
        for _ in range(2):
            src.step()
        drained = src.drain()
        for state in drained:
            assert state.checkpoint is None  # drain itself attaches nothing
            state.checkpoint = stash.get(state.request_id)
        stale = [s for s in drained if s.checkpoint is not None
                 and len(s.generated) > len(s.checkpoint.generated)]
        assert stale  # the stash really is behind the live state
        dst = ServingEngine(max_concurrency=2).start_functional(
            lm, cache="paged:page_tokens=4", seed=0)
        for state in drained:
            dst.inject_request(state)
        while dst.step():
            pass
        report_a, report_b = src.finish(), dst.finish()
        combined = {**_tokens(report_a), **_tokens(report_b)}
        assert combined == _tokens(reference)
        assert report_b.n_restored >= len(stale)
        assert report_b.recompute_tokens_saved > 0

    def test_inconsistent_checkpoint_falls_back_to_recompute(self, lm):
        requests = _trace(3, decode_len=8)
        reference = ServingEngine(max_concurrency=2).run_functional(
            lm, requests, cache="paged:page_tokens=4", seed=0)
        report_a, report_b, checkpoints = self._run_split(
            lm, requests, "paged:page_tokens=4", move=1, corrupt=True)
        assert checkpoints[0] is not None
        combined = {**_tokens(report_a), **_tokens(report_b)}
        assert combined == _tokens(reference)
        # The corrupted checkpoint was dropped, not trusted.
        assert report_b.n_restored == 0
        assert report_b.recompute_tokens_saved == 0

    def test_checkpoint_requests_covers_decoding_states_only(self, lm):
        session = ServingEngine(max_concurrency=2).start_functional(
            lm, cache="paged:page_tokens=4", seed=0)
        session.submit(_trace(3, decode_len=6))
        assert session.checkpoint_requests() == {}  # nothing admitted yet
        for _ in range(3):
            session.step()
        checkpoints = session.checkpoint_requests()
        assert checkpoints  # someone is mid-decode by now
        for rid, ckpt in checkpoints.items():
            state = session.scheduler.find(rid)
            assert ckpt.request_id == rid
            assert tuple(state.generated) == ckpt.generated
            assert ckpt.n_tokens == len(state.prompt) + len(state.generated) - 1
        while session.step():
            pass
        session.finish()

    def test_extract_unknown_or_finished_returns_none(self, lm):
        session = ServingEngine(max_concurrency=2).start_functional(
            lm, cache="paged:page_tokens=4", seed=0)
        requests = _trace(1, decode_len=2)
        session.submit(requests)
        assert session.extract_request("nope") is None
        while session.step():
            pass
        assert session.extract_request(requests[0].request_id) is None
        session.finish()

    def test_extract_queued_request_moves_without_checkpoint(self, lm):
        # max_concurrency=1 parks r1/r2 in the waiting queue.
        src = ServingEngine(max_concurrency=1).start_functional(
            lm, cache="paged:page_tokens=4", seed=0)
        requests = _trace(3, decode_len=6)
        src.submit(requests)
        src.step()
        state, ckpt = src.extract_request("r2")
        assert ckpt is None and not state.generated
        dst = ServingEngine(max_concurrency=1).start_functional(
            lm, cache="paged:page_tokens=4", seed=0)
        dst.inject_request(state)
        while src.step():
            pass
        while dst.step():
            pass
        reference = ServingEngine(max_concurrency=1).run_functional(
            lm, requests, cache="paged:page_tokens=4", seed=0)
        combined = {**_tokens(src.finish()), **_tokens(dst.finish())}
        assert combined == _tokens(reference)

    def test_cow_radix_shared_prefix_migration(self, lm):
        # Two requests share a 12-token prefix through the radix index:
        # extracting one mid-decode must not disturb the other's CoW pages.
        prefix = [(j % 30) + 1 for j in range(12)]
        requests = [
            _request("a", prefix + [31, 32], decode_len=8),
            _request("b", prefix + [33, 34], decode_len=8, arrival=0.01),
        ]
        factory_ref = resolve("cache", "paged:page_tokens=4")
        reference = ServingEngine(max_concurrency=2).run_functional(
            lm, requests, cache=factory_ref, seed=0, prefix_cache=True)

        factory_src = resolve("cache", "paged:page_tokens=4")
        factory_dst = resolve("cache", "paged:page_tokens=4")
        src = ServingEngine(max_concurrency=2).start_functional(
            lm, cache=factory_src, seed=0, prefix_cache=True)
        src.submit(requests)
        for _ in range(5):
            src.step()
        state, ckpt = src.extract_request("b")
        assert ckpt is not None  # mid-decode on a paged cache
        dst = ServingEngine(max_concurrency=2).start_functional(
            lm, cache=factory_dst, seed=0)
        dst.inject_request(state)
        while src.step():
            pass
        while dst.step():
            pass
        report_a, report_b = src.finish(), dst.finish()
        assert {**_tokens(report_a), **_tokens(report_b)} == _tokens(reference)
        for factory in (factory_src, factory_dst):
            factory.check_accounting()
            assert factory.referenced_pages == 0


class TestClusterMigration:
    def _trace(self, n=10, decode_len=12, **kwargs):
        return _trace(n, decode_len=decode_len, **kwargs)

    def _cluster(self, n_replicas=3, **kwargs):
        merged = dict(router="round-robin", cache=BOUNDED, max_concurrency=2,
                      seed=0)
        merged.update(kwargs)
        return ClusterEngine(n_replicas, **merged)

    def test_drain_on_degraded_migrates_and_stays_token_identical(self, lm):
        requests = self._trace()
        healthy = self._cluster().run(lm, requests)
        report = self._cluster(
            faults=["straggler:replica=0,slowdown=3"],
            migration="drain-on-degraded:max_inflight=0",
            paranoid=True,
        ).run(lm, requests)
        assert all(r.status == "finished" for r in report.results)
        assert _tokens(report) == _tokens(healthy)
        assert report.migrated_requests > 0
        assert report.migrated_pages > 0
        assert report.n_restored >= report.migrated_requests
        assert report.recompute_tokens_saved > 0
        text = report.summary()
        assert "migration" in text and "drain-on-degraded:max_inflight=0" in text

    def test_periodic_checkpoints_bound_crash_recompute(self, lm):
        requests = self._trace()
        healthy = self._cluster(n_replicas=2).run(lm, requests)
        recompute = self._cluster(n_replicas=2, paranoid=True)
        recompute.fail_replica(1, at_step=5)
        recompute_report = recompute.run(lm, requests)
        ckpt = self._cluster(n_replicas=2, paranoid=True,
                             migration="checkpoint:interval=2")
        ckpt.fail_replica(1, at_step=5)
        report = ckpt.run(lm, requests)
        for run in (recompute_report, report):
            assert run.completed_fraction == 1.0
            assert _tokens(run) == _tokens(healthy)
        # Recompute-only recovery restores nothing; checkpointed recovery
        # resumes the crashed replica's decodes from the last stash.
        assert recompute_report.recompute_tokens_saved == 0
        assert report.recompute_tokens_saved > 0
        assert report.migrated_requests > 0
        assert "recompute tokens saved" in report.summary()

    def test_cancel_while_migrating_is_terminal_once(self, lm):
        requests = self._trace()
        cluster = self._cluster(
            faults=["straggler:replica=0,slowdown=3"],
            migration=["drain-on-degraded:max_inflight=0",
                       "checkpoint:interval=2"],
            paranoid=True,
        )
        victim = requests[0].request_id
        cluster.cancel(victim, at_step=10)  # mid-run, after drains begin
        report = cluster.run(lm, requests)
        assert len(report.results) == len(requests)
        outcomes = _by_id(report)
        assert outcomes[victim].status == "cancelled"
        others = [r for rid, r in outcomes.items() if rid != victim]
        assert all(r.status == "finished" for r in others)

    def test_deadline_expiry_during_drain_is_explicit(self, lm):
        requests = self._trace(8, decode_len=24, deadline_steps=14)
        report = self._cluster(
            faults=["straggler:replica=0,slowdown=4"],
            migration="drain-on-degraded:max_inflight=0",
            paranoid=True,
        ).run(lm, requests)
        assert len(report.results) == len(requests)
        statuses = {r.status for r in report.results}
        assert statuses <= {"finished", "timeout"}
        assert "timeout" in statuses  # the deadline did bite mid-drain

    def test_crash_of_migration_target_mid_round(self, lm):
        requests = self._trace()
        healthy = self._cluster().run(lm, requests)
        cluster = self._cluster(
            faults=["straggler:replica=0,slowdown=3"],
            migration=["drain-on-degraded:max_inflight=0",
                       "checkpoint:interval=2"],
            paranoid=True,
        )
        # Replica 1 absorbs migrations off the degraded replica 0, then
        # crashes itself: its requests (migrated ones included) must land on
        # replica 2 and still finish token-identically.
        cluster.fail_replica(1, at_step=12)
        report = cluster.run(lm, requests)
        assert report.completed_fraction == 1.0
        assert _tokens(report) == _tokens(healthy)
        assert report.failed_replicas == [1]
        assert report.n_requeued > 0  # the target's load moved again

    def test_migration_disabled_by_default(self, lm):
        requests = self._trace(6, decode_len=5)
        report = self._cluster(n_replicas=2).run(lm, requests)
        assert report.migration is None
        assert report.migrated_requests == 0
        assert report.migrated_pages == 0
        assert "migration" not in report.summary()
