"""Edge-serving hardware simulation: reproduce the Figure 13 comparison.

Simulates LLaMA2-7B serving the PG19 long-generation workload (512-token
prompt, 8192 generated tokens, batch 16) on the five systems of the paper and
prints speedup / energy efficiency normalised to Original+SRAM, plus the
Kelle+eDRAM energy breakdown.

Run with::

    python examples/edge_serving_simulation.py [model-name]
"""

from __future__ import annotations

import sys

from repro.baselines.systems import baseline_suite
from repro.llm.config import get_config
from repro.utils.units import seconds_to_human
from repro.workloads.generator import trace_for_dataset


def main(model_name: str = "llama2-7b") -> None:
    model = get_config(model_name)
    trace = trace_for_dataset("pg19")
    suite = baseline_suite(kv_budget=2048)
    reference = suite["original+sram"].simulate(model, trace)

    print(f"Serving {model.name} on the PG19 trace "
          f"(context {trace.context_len}, decode {trace.decode_len}, batch {trace.batch_size})\n")
    header = f"{'system':<18}{'latency':>14}{'energy (kJ)':>14}{'speedup':>10}{'energy eff.':>13}"
    print(header)
    print("-" * len(header))
    for name, system in suite.items():
        result = system.simulate(model, trace)
        print(f"{name:<18}{seconds_to_human(result.total_latency_s):>14}"
              f"{result.total_energy_j / 1e3:>14.1f}"
              f"{result.speedup_over(reference):>9.2f}x"
              f"{result.energy_efficiency_over(reference):>12.2f}x")

    kelle = suite["kelle+edram"].simulate(model, trace)
    print("\nKelle+eDRAM energy breakdown:")
    for component, energy in sorted(kelle.energy.components.items(), key=lambda kv: -kv[1]):
        print(f"  {component:<18}{energy / 1e3:>10.2f} kJ   ({kelle.energy.fraction(component):5.1%})")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "llama2-7b")
