"""Deprecation helper for the legacy factory entry points.

The registry-based API (:func:`repro.registry.resolve`) supersedes the
scattered per-module factory functions.  The old functions keep working as
thin shims, but emit a :class:`DeprecationWarning` pointing at the spec-string
replacement.
"""

from __future__ import annotations

import warnings


def warn_deprecated(old: str, replacement: str, *, stacklevel: int = 3) -> None:
    """Emit a DeprecationWarning for a legacy entry point.

    ``stacklevel`` defaults to 3 so the warning points at the *caller* of the
    deprecated public function, not at the shim body.
    """
    warnings.warn(
        f"{old} is deprecated; use {replacement} instead",
        DeprecationWarning,
        stacklevel=stacklevel,
    )
