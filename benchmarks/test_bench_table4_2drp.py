"""Benchmark: regenerate Table 4 (2DRP vs uniform refresh at matched failure rates)."""

from repro.experiments import table4_refresh


def test_bench_table4(benchmark, once):
    table = once(benchmark, table4_refresh.run)
    by_scale: dict[float, dict[str, dict]] = {}
    for row in table.rows:
        by_scale.setdefault(row["scale"], {})[row["policy"]] = row
    for scale, rows in by_scale.items():
        # 2DRP protects the important bits, so at the same average failure rate
        # it achieves at least the uniform policy's accuracy and perplexity.
        assert rows["2drp"]["accuracy"] >= rows["uniform"]["accuracy"], scale
        assert rows["2drp"]["ppl"] <= rows["uniform"]["ppl"] * 1.05, scale
    print(table.to_markdown())
