"""Preemption benchmark: bounded-KV serving under 2x oversubscription.

Exercises the layered serving core (Scheduler / KVSpaceManager /
ModelExecutor) where it earns its keep — a KV pool too small for the
offered load — and writes ``BENCH_preempt.json``:

* ``preempt`` — a bursty trace served by an *unconstrained* paged pool vs a
  pool sized at ~50% of the burst's peak KV demand (2x oversubscription).
  The bounded run must complete every request via eviction-and-recompute,
  token-identical to the unconstrained run; reported metrics are throughput
  retention, preemption counts and p99 TTFT.
* ``priority`` — a mixed-priority (tiered) trace on the same bounded pool
  under ``fcfs`` vs ``priority:levels=3``.  The guarded metric is the
  *step-count* p99 TTFT advantage of the top tier (deterministic: step
  counts do not depend on the host machine).

Usage::

    PYTHONPATH=src python benchmarks/bench_preempt.py            # full run
    PYTHONPATH=src python benchmarks/bench_preempt.py --quick    # CI smoke

The committed ``benchmarks/BENCH_preempt_baseline.json`` pins the guarded
metrics (its ``guarded`` key); CI runs ``check_bench_regression.py`` against
it and fails on a >20% drop.
"""

from __future__ import annotations

import numpy as np

from _common import bench_main

from repro.llm.config import tiny_config
from repro.llm.model import DecoderLM
from repro.registry import resolve
from repro.serve import ServingEngine
from repro.workloads import bursty_requests, tiered_requests


def _bench_model(max_seq_len: int) -> DecoderLM:
    config = tiny_config("bench-preempt", n_layers=4, d_model=64, n_heads=4, d_ff=128,
                         vocab_size=128, max_seq_len=max_seq_len)
    return DecoderLM(config, seed=0)


def _bounded_factory(requests, concurrency: int, page_tokens: int,
                     oversubscription: float):
    """A hard-bounded paged factory at ``1/oversubscription`` of peak demand.

    Peak demand is the sum of the ``concurrency`` largest per-request KV
    footprints (prompt + decode tokens) — what an unconstrained run would
    hold at its worst step.
    """
    footprints = sorted((r.prompt_len + r.decode_len for r in requests),
                        reverse=True)
    demand = sum(footprints[:concurrency])
    capacity_tokens = max(2 * page_tokens, int(demand / oversubscription))
    pages = -(-capacity_tokens // page_tokens)
    return resolve("cache", f"paged:page_tokens={page_tokens},"
                            f"initial_pages={pages},grow=false"), pages * page_tokens


def _ttft_steps_p99(report, priority: int | None = None) -> float:
    steps = [r.first_token_step for r in report.results
             if priority is None or r.request.priority == priority]
    return float(np.percentile(steps, 99))


def _metrics(report) -> dict:
    return {
        "decode_tokens_per_s": report.decode_tokens_per_s,
        "wall_s": report.wall_s,
        "n_steps": report.n_steps,
        "n_preemptions": report.n_preemptions,
        "completed_fraction": (sum(1 for r in report.results
                                   if r.status == "finished")
                               / max(report.n_requests, 1)),
        "p99_ttft_s": report.ttft_percentile_s(99),
        "p99_ttft_steps": _ttft_steps_p99(report),
    }


def run_benchmark(quick: bool, repeats: int, seed: int = 0) -> dict:
    if quick:
        n_bursts, burst_size = 2, 6
        prompt_len, decode_len = 48, 16
        tiered_n, tiered_prompt, tiered_decode = 12, 32, 12
        page_tokens, concurrency = 8, 6
    else:
        n_bursts, burst_size = 3, 8
        prompt_len, decode_len = 192, 48
        tiered_n, tiered_prompt, tiered_decode = 24, 128, 32
        page_tokens, concurrency = 16, 8

    lm = _bench_model(max_seq_len=4 * (prompt_len + decode_len + 64))
    engine = ServingEngine(max_concurrency=concurrency)
    vocab = lm.config.vocab_size

    bursty = bursty_requests(n_bursts=n_bursts, burst_size=burst_size,
                             prompt_len=prompt_len, decode_len=decode_len,
                             vocab_size=vocab, length_jitter=0.25, seed=seed)
    tiered = tiered_requests(n_requests=tiered_n, levels=3,
                             prompt_len=tiered_prompt, decode_len=tiered_decode,
                             vocab_size=vocab, seed=seed)

    def best(requests, **kwargs):
        top = None
        for _ in range(repeats):
            report = engine.run_functional(lm, requests, **kwargs)
            if top is None or report.decode_tokens_per_s > top.decode_tokens_per_s:
                top = report
        return top

    # -- regime 1: bounded pool at 2x oversubscription (fcfs) -----------
    unconstrained = best(bursty, cache=f"paged:page_tokens={page_tokens}")
    factory, capacity = _bounded_factory(bursty, concurrency, page_tokens,
                                         oversubscription=2.0)
    bounded = best(bursty, cache=factory)
    factory.check_accounting()
    assert [r.generated_tokens for r in bounded.results] == \
        [r.generated_tokens for r in unconstrained.results], \
        "preemption-and-recompute diverged from the unconstrained tokens"
    preempt = {
        "unconstrained": _metrics(unconstrained),
        "bounded": _metrics(bounded),
        "capacity_tokens": capacity,
        "completed_fraction": _metrics(bounded)["completed_fraction"],
        "throughput_retained": (bounded.decode_tokens_per_s
                                / max(unconstrained.decode_tokens_per_s, 1e-9)),
    }

    # -- regime 2: fcfs vs priority on the bounded pool (tiered) --------
    tiered_factory, tiered_capacity = _bounded_factory(
        tiered, concurrency, page_tokens, oversubscription=2.0)
    fcfs = best(tiered, cache=tiered_factory, policy="fcfs")
    priority_rep = best(tiered, cache=tiered_factory, policy="priority:levels=3")
    tiered_factory.check_accounting()
    fcfs_tier0 = max(_ttft_steps_p99(fcfs, priority=0), 1.0)
    prio_tier0 = max(_ttft_steps_p99(priority_rep, priority=0), 1.0)
    priority = {
        "fcfs": _metrics(fcfs),
        "priority": _metrics(priority_rep),
        "capacity_tokens": tiered_capacity,
        "fcfs_p99_ttft_steps_tier0": fcfs_tier0,
        "priority_p99_ttft_steps_tier0": prio_tier0,
        "completed_fraction": min(_metrics(fcfs)["completed_fraction"],
                                  _metrics(priority_rep)["completed_fraction"]),
        "ttft_step_speedup_tier0": fcfs_tier0 / prio_tier0,
    }

    results = {
        "config": {
            "model": lm.config.name, "n_layers": lm.config.n_layers,
            "max_concurrency": concurrency, "page_tokens": page_tokens,
            "repeats": repeats, "quick": quick,
            "bursty": {"n_bursts": n_bursts, "burst_size": burst_size,
                       "prompt_len": prompt_len, "decode_len": decode_len},
            "tiered": {"n_requests": tiered_n, "prompt_len": tiered_prompt,
                       "decode_len": tiered_decode},
        },
        "preempt": preempt,
        "priority": priority,
        # Deterministic metrics only: completion and step-count TTFT ratios
        # do not depend on the host machine.
        "guarded": [["preempt", "completed_fraction"],
                    ["priority", "completed_fraction"],
                    ["priority", "ttft_step_speedup_tier0"]],
    }

    print(f"preempt : bounded {bounded.decode_tokens_per_s:8.1f} tok/s "
          f"({preempt['throughput_retained']:.2f}x of unconstrained) | "
          f"{bounded.n_preemptions} preemptions | capacity {capacity} tokens | "
          f"completed {preempt['completed_fraction']:.0%}")
    print(f"priority: tier0 p99 TTFT {prio_tier0:.0f} steps vs {fcfs_tier0:.0f} "
          f"under fcfs ({priority['ttft_step_speedup_tier0']:.2f}x) | "
          f"preemptions fcfs {fcfs.n_preemptions} / "
          f"priority {priority_rep.n_preemptions}")
    return results


def main() -> None:
    bench_main(run_benchmark, "BENCH_preempt.json", __doc__)


if __name__ == "__main__":
    main()
