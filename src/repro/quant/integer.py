"""Integer quantization primitives (symmetric and asymmetric, per-axis).

The paper quantizes weights to 8 bit everywhere, compares against QuaRot-style
4-bit KV quantization and KIVI-style 2-bit asymmetric per-channel KV
quantization, and studies a W4A8 Kelle variant (Table 6).  These functions are
fake-quantization utilities: they return both the integer codes and the
dequantised values, so both the accuracy path (dequantised) and the storage
accounting path (bit width) can share them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class QuantizedTensor:
    """Integer codes plus the affine parameters needed to reconstruct values."""

    codes: np.ndarray
    scale: np.ndarray
    zero_point: np.ndarray
    bits: int
    axis: int | tuple[int, ...] | None

    @property
    def storage_bits(self) -> int:
        """Total payload bits of the codes (excluding scales/zero points)."""
        return int(self.codes.size * self.bits)

    def dequantize(self) -> np.ndarray:
        """Reconstruct floating-point values from the codes."""
        return dequantize(self)


def _reduction_axes(ndim: int, axis: int | tuple[int, ...] | None) -> tuple[int, ...] | None:
    if axis is None:
        return None
    kept = {axis % ndim} if isinstance(axis, int) else {a % ndim for a in axis}
    return tuple(i for i in range(ndim) if i not in kept)


def quantize_symmetric(values: np.ndarray, bits: int = 8, axis: int | tuple[int, ...] | None = None) -> QuantizedTensor:
    """Symmetric (zero-point-free) quantization to ``bits`` bits.

    ``axis`` selects per-axis scales (e.g. per output channel for weights);
    ``None`` uses a single tensor-wide scale.
    """
    if not 2 <= bits <= 16:
        raise ValueError("bits must lie in [2, 16]")
    values = np.asarray(values, dtype=np.float64)
    qmax = 2 ** (bits - 1) - 1
    reduce_over = _reduction_axes(values.ndim, axis)
    max_abs = np.max(np.abs(values), axis=reduce_over, keepdims=True)
    scale = np.where(max_abs > 0, max_abs / qmax, 1.0)
    codes = np.clip(np.round(values / scale), -qmax - 1, qmax).astype(np.int32)
    zero_point = np.zeros_like(scale)
    return QuantizedTensor(codes=codes, scale=scale, zero_point=zero_point, bits=bits, axis=axis)


def quantize_asymmetric(values: np.ndarray, bits: int = 8, axis: int | tuple[int, ...] | None = None) -> QuantizedTensor:
    """Asymmetric (affine) quantization to ``bits`` bits.

    This is the KIVI-style scheme: per-channel min/max with a zero point,
    which tolerates the skewed distributions of key vectors better than the
    symmetric scheme at very low bit widths.
    """
    if not 2 <= bits <= 16:
        raise ValueError("bits must lie in [2, 16]")
    values = np.asarray(values, dtype=np.float64)
    qmax = 2**bits - 1
    reduce_over = _reduction_axes(values.ndim, axis)
    vmin = np.min(values, axis=reduce_over, keepdims=True)
    vmax = np.max(values, axis=reduce_over, keepdims=True)
    span = vmax - vmin
    scale = np.where(span > 0, span / qmax, 1.0)
    zero_point = np.round(-vmin / scale)
    codes = np.clip(np.round(values / scale) + zero_point, 0, qmax).astype(np.int32)
    return QuantizedTensor(codes=codes, scale=scale, zero_point=zero_point, bits=bits, axis=axis)


def dequantize(tensor: QuantizedTensor) -> np.ndarray:
    """Reconstruct floating-point values from a :class:`QuantizedTensor`."""
    return ((tensor.codes.astype(np.float64) - tensor.zero_point) * tensor.scale).astype(np.float32)


def quantization_mse(values: np.ndarray, tensor: QuantizedTensor) -> float:
    """Mean squared reconstruction error of a quantization."""
    values = np.asarray(values, dtype=np.float64)
    reconstructed = dequantize(tensor).astype(np.float64)
    return float(np.mean((values - reconstructed) ** 2))


def fake_quantize(values: np.ndarray, bits: int = 8, axis: int | tuple[int, ...] | None = None,
                  symmetric: bool = True) -> np.ndarray:
    """Quantize and immediately dequantize, returning float32 values."""
    if symmetric:
        return dequantize(quantize_symmetric(values, bits=bits, axis=axis))
    return dequantize(quantize_asymmetric(values, bits=bits, axis=axis))
